//! I/O statistics — the measurement instrument behind every "number of
//! disk reads" series in the paper.

use crate::page::PageKind;

/// Counters for page traffic, split by [`PageKind`].
///
/// * **Logical** reads/writes count every request made to the
///   [`crate::PageFile`], hit or miss. With the buffer pool disabled
///   (capacity 0), logical = physical, which is the cold-cache accounting
///   the paper's per-query disk-read plots use.
/// * **Physical** reads/writes count only requests that reached the
///   underlying [`crate::PageStore`].
/// * **Cache** hits/misses count buffer-pool probes on the read path
///   (every logical read is exactly one hit or one miss, and every miss
///   is exactly one physical read); evictions count pages pushed out of
///   the pool to make room, dirty or clean.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    logical_reads: [u64; 4],
    logical_writes: [u64; 4],
    physical_reads: u64,
    physical_writes: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
}

impl IoStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_logical_read(&mut self, kind: PageKind) {
        if let Some(c) = self.logical_reads.get_mut(kind as usize) {
            *c += 1;
        }
    }

    pub(crate) fn record_logical_write(&mut self, kind: PageKind) {
        if let Some(c) = self.logical_writes.get_mut(kind as usize) {
            *c += 1;
        }
    }

    pub(crate) fn record_physical_read(&mut self) {
        self.physical_reads += 1;
    }

    pub(crate) fn record_physical_write(&mut self) {
        self.physical_writes += 1;
    }

    pub(crate) fn record_cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    pub(crate) fn record_cache_miss(&mut self) {
        self.cache_misses += 1;
    }

    pub(crate) fn record_cache_evictions(&mut self, n: u64) {
        self.cache_evictions += n;
    }

    /// Logical reads of pages of `kind`.
    pub fn logical_reads(&self, kind: PageKind) -> u64 {
        self.logical_reads.get(kind as usize).copied().unwrap_or(0)
    }

    /// Logical writes of pages of `kind`.
    pub fn logical_writes(&self, kind: PageKind) -> u64 {
        self.logical_writes.get(kind as usize).copied().unwrap_or(0)
    }

    /// Total logical reads of node and leaf pages — the paper's
    /// "number of disk reads" for a query.
    pub fn tree_reads(&self) -> u64 {
        self.logical_reads(PageKind::Node) + self.logical_reads(PageKind::Leaf)
    }

    /// Total logical node+leaf accesses (reads + writes) — the paper's
    /// "number of disk accesses" for insertion cost (Figure 9-b).
    pub fn tree_accesses(&self) -> u64 {
        self.tree_reads()
            + self.logical_writes(PageKind::Node)
            + self.logical_writes(PageKind::Leaf)
    }

    /// Physical reads that reached the backing store.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads
    }

    /// Physical writes that reached the backing store.
    pub fn physical_writes(&self) -> u64 {
        self.physical_writes
    }

    /// Read-path buffer-pool probes answered from memory.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Read-path buffer-pool probes that had to go to the store. Always
    /// equal to [`IoStats::physical_reads`].
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Pages evicted from the buffer pool to make room (dirty or clean),
    /// including those spilled by a capacity shrink.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions
    }

    /// Hit fraction of read-path probes, or `None` before the first probe.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        #[allow(clippy::cast_precision_loss)] // display-only ratio
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Difference `self - earlier`, for windowed measurements around a
    /// single query. Saturates rather than panicking if counters were
    /// reset in between.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        let mut d = IoStats::new();
        let sub = |now: &[u64; 4], then: &[u64; 4], out: &mut [u64; 4]| {
            for (o, (a, b)) in out.iter_mut().zip(now.iter().zip(then)) {
                *o = a.saturating_sub(*b);
            }
        };
        sub(
            &self.logical_reads,
            &earlier.logical_reads,
            &mut d.logical_reads,
        );
        sub(
            &self.logical_writes,
            &earlier.logical_writes,
            &mut d.logical_writes,
        );
        d.physical_reads = self.physical_reads.saturating_sub(earlier.physical_reads);
        d.physical_writes = self.physical_writes.saturating_sub(earlier.physical_writes);
        d.cache_hits = self.cache_hits.saturating_sub(earlier.cache_hits);
        d.cache_misses = self.cache_misses.saturating_sub(earlier.cache_misses);
        d.cache_evictions = self.cache_evictions.saturating_sub(earlier.cache_evictions);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_kind() {
        let mut s = IoStats::new();
        s.record_logical_read(PageKind::Node);
        s.record_logical_read(PageKind::Node);
        s.record_logical_read(PageKind::Leaf);
        s.record_logical_write(PageKind::Leaf);
        assert_eq!(s.logical_reads(PageKind::Node), 2);
        assert_eq!(s.logical_reads(PageKind::Leaf), 1);
        assert_eq!(s.logical_reads(PageKind::Meta), 0);
        assert_eq!(s.tree_reads(), 3);
        assert_eq!(s.tree_accesses(), 4);
    }

    #[test]
    fn since_subtracts() {
        let mut a = IoStats::new();
        a.record_logical_read(PageKind::Leaf);
        let snapshot = a.clone();
        a.record_logical_read(PageKind::Leaf);
        a.record_physical_read();
        let d = a.since(&snapshot);
        assert_eq!(d.logical_reads(PageKind::Leaf), 1);
        assert_eq!(d.physical_reads(), 1);
    }

    #[test]
    fn since_saturates_after_reset() {
        let mut old = IoStats::new();
        old.record_physical_read();
        let fresh = IoStats::new();
        assert_eq!(fresh.since(&old).physical_reads(), 0);
    }

    #[test]
    fn cache_counters_accumulate_and_window() {
        let mut s = IoStats::new();
        assert_eq!(s.cache_hit_rate(), None, "no probes yet");
        s.record_cache_hit();
        s.record_cache_hit();
        s.record_cache_hit();
        s.record_cache_miss();
        s.record_cache_evictions(2);
        assert_eq!(s.cache_hits(), 3);
        assert_eq!(s.cache_misses(), 1);
        assert_eq!(s.cache_evictions(), 2);
        assert_eq!(s.cache_hit_rate(), Some(0.75));

        let snapshot = s.clone();
        s.record_cache_miss();
        s.record_cache_evictions(1);
        let d = s.since(&snapshot);
        assert_eq!(d.cache_hits(), 0);
        assert_eq!(d.cache_misses(), 1);
        assert_eq!(d.cache_evictions(), 1);
    }
}
