//! I/O statistics — the measurement instrument behind every "number of
//! disk reads" series in the paper.
//!
//! Recording happens through [`AtomicIoStats`] (relaxed atomics, so the
//! sharded buffer pool can count from many threads without a lock);
//! [`IoStats`] is the plain snapshot type the public API hands out.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::page::PageKind;

/// Counters for page traffic, split by [`PageKind`].
///
/// * **Logical** reads/writes count every request made to the
///   [`crate::PageFile`], hit or miss. With the buffer pool disabled
///   (capacity 0), logical = physical, which is the cold-cache accounting
///   the paper's per-query disk-read plots use.
/// * **Physical** reads/writes count only requests that reached the
///   underlying [`crate::PageStore`].
/// * **Cache** hits/misses count buffer-pool probes on the read path
///   (every logical read is exactly one hit or one miss, and every miss
///   is exactly one physical read); evictions count pages pushed out of
///   the pool to make room, dirty or clean.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    logical_reads: [u64; 4],
    logical_writes: [u64; 4],
    physical_reads: u64,
    physical_writes: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
}

/// The live, thread-safe counters behind a `PageFile`. All increments are
/// relaxed atomics: counts from concurrent readers are never lost, though a
/// [`AtomicIoStats::snapshot`] taken mid-operation may observe one counter
/// of a pair (e.g. miss/physical-read) before the other. Snapshots taken
/// at a quiescent point are exact.
// srlint: send-sync -- all fields are independent atomic tallies; the misses == physical-reads pairing is kept exact by the shard lock in read_raw, not by this type
#[derive(Default)]
pub(crate) struct AtomicIoStats {
    logical_reads: [AtomicU64; 4],
    logical_writes: [AtomicU64; 4],
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
}

impl AtomicIoStats {
    // srlint: ordering -- relaxed everywhere: each counter is an independent monotone tally, and the misses == physical_reads invariant is enforced by incrementing both under the same shard lock in read_raw, not by memory ordering; quiescent snapshots are therefore exact
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_logical_read(&self, kind: PageKind) {
        if let Some(c) = self.logical_reads.get(kind as usize) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_logical_write(&self, kind: PageKind) {
        if let Some(c) = self.logical_writes.get(kind as usize) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_physical_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_evictions(&self, n: u64) {
        self.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Copy the counters into a plain [`IoStats`] value.
    pub(crate) fn snapshot(&self) -> IoStats {
        let arr = |a: &[AtomicU64; 4]| {
            let mut out = [0u64; 4];
            for (o, c) in out.iter_mut().zip(a.iter()) {
                *o = c.load(Ordering::Relaxed);
            }
            out
        };
        IoStats {
            logical_reads: arr(&self.logical_reads),
            logical_writes: arr(&self.logical_writes),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter.
    pub(crate) fn reset(&self) {
        for c in &self.logical_reads {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.logical_writes {
            c.store(0, Ordering::Relaxed);
        }
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
    }
}

impl IoStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logical reads of pages of `kind`.
    pub fn logical_reads(&self, kind: PageKind) -> u64 {
        self.logical_reads.get(kind as usize).copied().unwrap_or(0)
    }

    /// Logical writes of pages of `kind`.
    pub fn logical_writes(&self, kind: PageKind) -> u64 {
        self.logical_writes.get(kind as usize).copied().unwrap_or(0)
    }

    /// Total logical reads of node and leaf pages — the paper's
    /// "number of disk reads" for a query.
    pub fn tree_reads(&self) -> u64 {
        self.logical_reads(PageKind::Node) + self.logical_reads(PageKind::Leaf)
    }

    /// Total logical node+leaf accesses (reads + writes) — the paper's
    /// "number of disk accesses" for insertion cost (Figure 9-b).
    pub fn tree_accesses(&self) -> u64 {
        self.tree_reads()
            + self.logical_writes(PageKind::Node)
            + self.logical_writes(PageKind::Leaf)
    }

    /// Physical reads that reached the backing store.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads
    }

    /// Physical writes that reached the backing store.
    pub fn physical_writes(&self) -> u64 {
        self.physical_writes
    }

    /// Read-path buffer-pool probes answered from memory.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Read-path buffer-pool probes that had to go to the store. Always
    /// equal to [`IoStats::physical_reads`].
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Pages evicted from the buffer pool to make room (dirty or clean),
    /// including those spilled by a capacity shrink.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions
    }

    /// Hit fraction of read-path probes, or `None` before the first probe.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        #[allow(clippy::cast_precision_loss)] // display-only ratio
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Difference `self - earlier`, for windowed measurements around a
    /// single query. Saturates rather than panicking if counters were
    /// reset in between.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        let mut d = IoStats::new();
        let sub = |now: &[u64; 4], then: &[u64; 4], out: &mut [u64; 4]| {
            for (o, (a, b)) in out.iter_mut().zip(now.iter().zip(then)) {
                *o = a.saturating_sub(*b);
            }
        };
        sub(
            &self.logical_reads,
            &earlier.logical_reads,
            &mut d.logical_reads,
        );
        sub(
            &self.logical_writes,
            &earlier.logical_writes,
            &mut d.logical_writes,
        );
        d.physical_reads = self.physical_reads.saturating_sub(earlier.physical_reads);
        d.physical_writes = self.physical_writes.saturating_sub(earlier.physical_writes);
        d.cache_hits = self.cache_hits.saturating_sub(earlier.cache_hits);
        d.cache_misses = self.cache_misses.saturating_sub(earlier.cache_misses);
        d.cache_evictions = self.cache_evictions.saturating_sub(earlier.cache_evictions);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_kind() {
        let a = AtomicIoStats::new();
        a.record_logical_read(PageKind::Node);
        a.record_logical_read(PageKind::Node);
        a.record_logical_read(PageKind::Leaf);
        a.record_logical_write(PageKind::Leaf);
        let s = a.snapshot();
        assert_eq!(s.logical_reads(PageKind::Node), 2);
        assert_eq!(s.logical_reads(PageKind::Leaf), 1);
        assert_eq!(s.logical_reads(PageKind::Meta), 0);
        assert_eq!(s.tree_reads(), 3);
        assert_eq!(s.tree_accesses(), 4);
    }

    #[test]
    fn since_subtracts() {
        let a = AtomicIoStats::new();
        a.record_logical_read(PageKind::Leaf);
        let snapshot = a.snapshot();
        a.record_logical_read(PageKind::Leaf);
        a.record_physical_read();
        let d = a.snapshot().since(&snapshot);
        assert_eq!(d.logical_reads(PageKind::Leaf), 1);
        assert_eq!(d.physical_reads(), 1);
    }

    #[test]
    fn since_saturates_after_reset() {
        let a = AtomicIoStats::new();
        a.record_physical_read();
        let old = a.snapshot();
        a.reset();
        assert_eq!(a.snapshot().since(&old).physical_reads(), 0);
    }

    #[test]
    fn cache_counters_accumulate_and_window() {
        let a = AtomicIoStats::new();
        assert_eq!(a.snapshot().cache_hit_rate(), None, "no probes yet");
        a.record_cache_hit();
        a.record_cache_hit();
        a.record_cache_hit();
        a.record_cache_miss();
        a.record_cache_evictions(2);
        let s = a.snapshot();
        assert_eq!(s.cache_hits(), 3);
        assert_eq!(s.cache_misses(), 1);
        assert_eq!(s.cache_evictions(), 2);
        assert_eq!(s.cache_hit_rate(), Some(0.75));

        let snapshot = s.clone();
        a.record_cache_miss();
        a.record_cache_evictions(1);
        let d = a.snapshot().since(&snapshot);
        assert_eq!(d.cache_hits(), 0);
        assert_eq!(d.cache_misses(), 1);
        assert_eq!(d.cache_evictions(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let a = AtomicIoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        a.record_cache_hit();
                        a.record_logical_read(PageKind::Leaf);
                    }
                });
            }
        });
        let s = a.snapshot();
        assert_eq!(s.cache_hits(), 4000);
        assert_eq!(s.logical_reads(PageKind::Leaf), 4000);
    }
}
