//! Write-ahead log framing: checksummed, length-prefixed redo records.
//!
//! ## Commit protocol
//!
//! Between checkpoints, every page mutation appends a full-page redo
//! frame here and **nothing** is written to the page store in place. A
//! [`crate::PageFile::flush`] appends a commit marker, syncs the log
//! (the fsync barrier), and only then copies the latest frame of each
//! page into the store — so a crash at any instant leaves the store in
//! its last-checkpoint state plus a log whose committed suffix can be
//! replayed verbatim. Frames past the last commit marker, and any
//! torn/corrupt tail, are discarded by the replay scan.
//!
//! ## On-disk layout
//!
//! ```text
//! header:  magic  version  page_size  epoch  crc32      (24 bytes)
//! frame:   kind  page_id  payload_len  crc32  payload   (17 + len)
//! ```
//!
//! `kind` is [`FRAME_PAGE`] (payload = one page image) or
//! [`FRAME_COMMIT`] (payload empty, `page_id` carries the commit
//! sequence number). The frame checksum is CRC-32 (IEEE) seeded with the
//! header's **epoch**, a counter bumped on every open and every
//! truncation. The seed is what makes truncate-then-append safe even if
//! the filesystem resurrects pre-truncation bytes after a power cut: all
//! page frames are the same size, so a stale frame from an earlier log
//! generation can land exactly on a frame boundary of the current one,
//! where only the epoch-salted checksum tells it apart from a frame this
//! generation wrote.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::error::{PagerError, Result};
use crate::page::PageId;

/// "SRWL" — distinct from the page file's "SRPG".
pub const WAL_MAGIC: u32 = 0x5352_574C;
/// Bumped on incompatible layout changes.
pub const WAL_VERSION: u32 = 1;
/// magic + version + page_size + epoch + crc.
pub const WAL_HEADER: usize = 4 + 4 + 4 + 8 + 4;
/// kind + page_id + payload_len + crc.
pub const FRAME_HEADER: usize = 1 + 8 + 4 + 4;
/// Frame kind: a full-page redo image.
pub const FRAME_PAGE: u8 = 1;
/// Frame kind: a commit marker sealing every frame before it.
pub const FRAME_COMMIT: u8 = 2;

const CRC_INIT: u32 = 0xFFFF_FFFF;

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        std::array::from_fn(|i| {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    0xEDB8_8320 ^ (crc >> 1)
                } else {
                    crc >> 1
                };
            }
            crc
        })
    })
}

/// Fold `bytes` into a running CRC-32 state (start from [`crc32_begin`],
/// finish with [`crc32_finish`]).
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = state;
    for &b in bytes {
        let idx = usize::from((crc ^ u32::from(b)) as u8);
        crc = table.get(idx).copied().unwrap_or(0) ^ (crc >> 8);
    }
    crc
}

/// Initial CRC-32 state.
pub fn crc32_begin() -> u32 {
    CRC_INIT
}

/// Final XOR of a CRC-32 state.
pub fn crc32_finish(state: u32) -> u32 {
    !state
}

/// One-shot CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_begin(), bytes))
}

fn rd_u32(buf: &[u8], off: usize) -> Option<u32> {
    buf.get(off..off.checked_add(4)?)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
}

fn rd_u64(buf: &[u8], off: usize) -> Option<u64> {
    buf.get(off..off.checked_add(8)?)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .map(u64::from_le_bytes)
}

/// A decoded WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalFrame {
    /// A full-page redo image.
    Page {
        /// The page this image belongs to.
        id: PageId,
        /// The page bytes (exactly one page long).
        image: Vec<u8>,
    },
    /// A commit marker: every frame appended before it is durable once
    /// the log is synced.
    Commit {
        /// Monotone commit sequence number within this log generation.
        seq: u64,
    },
}

/// Outcome of decoding one frame at the start of a buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameDecode {
    /// A valid frame and the number of bytes it occupied.
    Frame(WalFrame, usize),
    /// The buffer ends before the frame does — a cleanly truncated tail.
    Incomplete,
    /// The bytes are not a valid frame of this epoch (bad kind, bad
    /// length, or checksum mismatch) — a torn or stale tail.
    Corrupt,
}

/// Encode the WAL file header for a log generation.
pub fn encode_header(page_size: usize, epoch: u64) -> Result<Vec<u8>> {
    let page_size = u32::try_from(page_size)
        .map_err(|_| PagerError::Corrupt("page size does not fit u32".into()))?;
    let mut buf = Vec::with_capacity(WAL_HEADER);
    buf.extend_from_slice(&WAL_MAGIC.to_le_bytes());
    buf.extend_from_slice(&WAL_VERSION.to_le_bytes());
    buf.extend_from_slice(&page_size.to_le_bytes());
    buf.extend_from_slice(&epoch.to_le_bytes());
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    Ok(buf)
}

fn encode_raw(kind: u8, id: u64, payload: &[u8], epoch: u64) -> Result<Vec<u8>> {
    let len = u32::try_from(payload.len())
        .map_err(|_| PagerError::Corrupt("frame payload does not fit u32".into()))?;
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.push(kind);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&len.to_le_bytes());
    let mut state = crc32_update(crc32_begin(), &epoch.to_le_bytes());
    state = crc32_update(state, &buf);
    state = crc32_update(state, payload);
    buf.extend_from_slice(&crc32_finish(state).to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Encode one frame, salting its checksum with `epoch`.
pub fn encode_frame(frame: &WalFrame, epoch: u64) -> Result<Vec<u8>> {
    match frame {
        WalFrame::Page { id, image } => encode_raw(FRAME_PAGE, *id, image, epoch),
        WalFrame::Commit { seq } => encode_raw(FRAME_COMMIT, *seq, &[], epoch),
    }
}

/// Encode a page-image frame without copying the image into a
/// [`WalFrame`] first — the pager's hot write path.
pub fn encode_page_frame(id: PageId, image: &[u8], epoch: u64) -> Result<Vec<u8>> {
    encode_raw(FRAME_PAGE, id, image, epoch)
}

/// Encode a commit marker.
pub fn encode_commit_frame(seq: u64, epoch: u64) -> Result<Vec<u8>> {
    encode_raw(FRAME_COMMIT, seq, &[], epoch)
}

/// Decode the frame at the start of `buf` against this log generation's
/// `epoch` and `page_size`.
// srlint: untrusted-source -- log bytes may be torn or stale; lengths decoded here are only trusted after the CRC and bounds checks
pub fn decode_frame(buf: &[u8], epoch: u64, page_size: usize) -> FrameDecode {
    if buf.len() < FRAME_HEADER {
        return FrameDecode::Incomplete;
    }
    let (Some(&kind), Some(id), Some(len), Some(stored)) =
        (buf.first(), rd_u64(buf, 1), rd_u32(buf, 9), rd_u32(buf, 13))
    else {
        return FrameDecode::Incomplete;
    };
    let Ok(len) = usize::try_from(len) else {
        return FrameDecode::Corrupt;
    };
    let valid_len = match kind {
        FRAME_PAGE => len == page_size,
        FRAME_COMMIT => len == 0,
        _ => return FrameDecode::Corrupt,
    };
    if !valid_len {
        return FrameDecode::Corrupt;
    }
    let Some(total) = FRAME_HEADER.checked_add(len) else {
        return FrameDecode::Corrupt;
    };
    if buf.len() < total {
        return FrameDecode::Incomplete;
    }
    let (Some(head), Some(payload)) = (buf.get(..13), buf.get(FRAME_HEADER..total)) else {
        return FrameDecode::Incomplete;
    };
    let mut state = crc32_update(crc32_begin(), &epoch.to_le_bytes());
    state = crc32_update(state, head);
    state = crc32_update(state, payload);
    if crc32_finish(state) != stored {
        return FrameDecode::Corrupt;
    }
    let frame = match kind {
        FRAME_PAGE => WalFrame::Page {
            id,
            image: payload.to_vec(),
        },
        _ => WalFrame::Commit { seq: id },
    };
    FrameDecode::Frame(frame, total)
}

/// What a replay scan found in a log.
#[derive(Clone, Debug, Default)]
pub struct ScanOutcome {
    /// Latest committed image per page, in ascending page order.
    pub committed: Vec<(PageId, Vec<u8>)>,
    /// Commit markers honored.
    pub commits: u64,
    /// Complete, checksum-valid frames discarded because no commit
    /// marker sealed them.
    pub dropped_frames: u64,
    /// Whether the scan stopped at a torn, truncated, or stale tail
    /// (including an unreadable header).
    pub torn_tail: bool,
    /// Epoch recorded in the header (best-effort raw field when the
    /// header itself failed validation; 0 for an empty log). The next
    /// generation must use a strictly larger epoch.
    pub header_epoch: u64,
}

/// Scan a whole log image: validate the header, walk frames, honor
/// commit markers, and stop at the first invalid byte.
///
/// Only a genuine configuration error (a valid header whose page size
/// disagrees with the store) is an `Err`; every torn or stale shape
/// degrades to a truncating recovery described by the outcome.
pub fn scan_log(buf: &[u8], page_size: usize) -> Result<ScanOutcome> {
    let mut out = ScanOutcome::default();
    if buf.is_empty() {
        return Ok(out);
    }
    // Even when the header fails validation, its epoch field is the
    // best available lower bound for picking the next generation's
    // epoch; a garbage value only makes the epoch jump, never repeat.
    out.header_epoch = rd_u64(buf, 12).unwrap_or(0);
    let header_ok = buf.len() >= WAL_HEADER
        && rd_u32(buf, 0) == Some(WAL_MAGIC)
        && rd_u32(buf, 4) == Some(WAL_VERSION)
        && buf
            .get(..20)
            .map(crc32)
            .zip(rd_u32(buf, 20))
            .is_some_and(|(a, b)| a == b);
    if !header_ok {
        out.torn_tail = true;
        return Ok(out);
    }
    let stored_ps = rd_u32(buf, 8).and_then(|v| usize::try_from(v).ok());
    if stored_ps != Some(page_size) {
        return Err(PagerError::Corrupt(format!(
            "wal header says page size {stored_ps:?}, store says {page_size}"
        )));
    }
    let epoch = out.header_epoch;
    let mut committed: BTreeMap<PageId, Vec<u8>> = BTreeMap::new();
    let mut pending: Vec<(PageId, Vec<u8>)> = Vec::new();
    let mut pos = WAL_HEADER;
    while let Some(rest) = buf.get(pos..) {
        if rest.is_empty() {
            break;
        }
        match decode_frame(rest, epoch, page_size) {
            FrameDecode::Frame(WalFrame::Page { id, image }, used) => {
                pending.push((id, image));
                pos += used;
            }
            FrameDecode::Frame(WalFrame::Commit { .. }, used) => {
                for (id, image) in pending.drain(..) {
                    committed.insert(id, image);
                }
                out.commits += 1;
                pos += used;
            }
            FrameDecode::Incomplete | FrameDecode::Corrupt => {
                out.torn_tail = true;
                break;
            }
        }
    }
    out.dropped_frames = pending.len() as u64;
    out.committed = committed.into_iter().collect();
    Ok(out)
}

/// Counters of what the write-ahead log has done — the recovery-side
/// companion of [`crate::IoStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Page-image redo frames appended (commit markers not included).
    pub frames_appended: u64,
    /// Commit markers appended.
    pub commits: u64,
    /// Times the log was truncated after a successful checkpoint.
    pub truncations: u64,
    /// Opens that found committed frames and reapplied them.
    pub replays: u64,
    /// Committed page images reapplied to the store across all replays.
    pub replayed_frames: u64,
    /// Complete but uncommitted frames discarded at replay.
    pub dropped_frames: u64,
    /// Torn/corrupt tails (including unreadable headers) discarded at
    /// replay.
    pub torn_tails: u64,
    /// Current logical length of the log in bytes.
    pub wal_bytes: u64,
}

/// Live counters behind a `PageFile`'s WAL, mirroring the shape of
/// [`crate::stats::AtomicIoStats`].
// srlint: send-sync -- independent atomic tallies; cross-counter exactness only holds at quiescent points, same contract as AtomicIoStats
#[derive(Default)]
pub(crate) struct AtomicWalStats {
    frames_appended: AtomicU64,
    commits: AtomicU64,
    truncations: AtomicU64,
    replays: AtomicU64,
    replayed_frames: AtomicU64,
    dropped_frames: AtomicU64,
    torn_tails: AtomicU64,
}

impl AtomicWalStats {
    // srlint: ordering -- relaxed: independent monotone tallies like AtomicIoStats; mutations are single-writer by the pager's contract, and replay-side counts are recorded before the PageFile is shared, so quiescent snapshots are exact
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_frame_appended(&self) {
        self.frames_appended.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_truncation(&self) {
        self.truncations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_replay(&self, outcome: &ScanOutcome) {
        if !outcome.committed.is_empty() {
            self.replays.fetch_add(1, Ordering::Relaxed);
            self.replayed_frames
                .fetch_add(outcome.committed.len() as u64, Ordering::Relaxed);
        }
        self.dropped_frames
            .fetch_add(outcome.dropped_frames, Ordering::Relaxed);
        if outcome.torn_tail {
            self.torn_tails.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self, wal_bytes: u64) -> WalStats {
        WalStats {
            frames_appended: self.frames_appended.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            replayed_frames: self.replayed_frames.load(Ordering::Relaxed),
            dropped_frames: self.dropped_frames.load(Ordering::Relaxed),
            torn_tails: self.torn_tails.load(Ordering::Relaxed),
            wal_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 64;

    fn page_frame(id: PageId, fill: u8) -> WalFrame {
        WalFrame::Page {
            id,
            image: vec![fill; PS],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_page_and_commit() {
        for (frame, epoch) in [
            (page_frame(7, 0xAB), 1u64),
            (page_frame(0, 0x00), 99),
            (WalFrame::Commit { seq: 3 }, 1),
        ] {
            let bytes = encode_frame(&frame, epoch).unwrap();
            match decode_frame(&bytes, epoch, PS) {
                FrameDecode::Frame(got, used) => {
                    assert_eq!(got, frame);
                    assert_eq!(used, bytes.len());
                }
                other => panic!("decode failed: {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_epoch_rejects_frame() {
        let bytes = encode_frame(&page_frame(1, 0x55), 4).unwrap();
        assert_eq!(decode_frame(&bytes, 5, PS), FrameDecode::Corrupt);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = encode_frame(&page_frame(9, 0x3C), 2).unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut flipped = bytes.clone();
                if let Some(b) = flipped.get_mut(byte) {
                    *b ^= 1 << bit;
                }
                assert_ne!(
                    decode_frame(&flipped, 2, PS),
                    FrameDecode::Frame(page_frame(9, 0x3C), bytes.len()),
                    "flip at byte {byte} bit {bit} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn truncated_frame_is_incomplete() {
        let bytes = encode_frame(&page_frame(2, 0x11), 1).unwrap();
        for keep in [0, 1, FRAME_HEADER - 1, FRAME_HEADER, bytes.len() - 1] {
            let cut = bytes.get(..keep).unwrap();
            assert_eq!(
                decode_frame(cut, 1, PS),
                FrameDecode::Incomplete,
                "prefix of {keep} bytes"
            );
        }
    }

    fn log_with(frames: &[WalFrame], epoch: u64) -> Vec<u8> {
        let mut buf = encode_header(PS, epoch).unwrap();
        for f in frames {
            buf.extend_from_slice(&encode_frame(f, epoch).unwrap());
        }
        buf
    }

    #[test]
    fn scan_honors_only_committed_frames() {
        let buf = log_with(
            &[
                page_frame(1, 0xA1),
                page_frame(2, 0xA2),
                WalFrame::Commit { seq: 1 },
                page_frame(1, 0xB1), // newer image, never committed
            ],
            7,
        );
        let out = scan_log(&buf, PS).unwrap();
        assert_eq!(out.commits, 1);
        assert_eq!(out.dropped_frames, 1);
        assert!(!out.torn_tail);
        assert_eq!(out.header_epoch, 7);
        assert_eq!(out.committed.len(), 2);
        assert_eq!(out.committed[0], (1, vec![0xA1; PS]));
        assert_eq!(out.committed[1], (2, vec![0xA2; PS]));
    }

    #[test]
    fn scan_takes_latest_committed_image() {
        let buf = log_with(
            &[
                page_frame(1, 0xA1),
                WalFrame::Commit { seq: 1 },
                page_frame(1, 0xB1),
                WalFrame::Commit { seq: 2 },
            ],
            1,
        );
        let out = scan_log(&buf, PS).unwrap();
        assert_eq!(out.commits, 2);
        assert_eq!(out.committed, vec![(1, vec![0xB1; PS])]);
    }

    #[test]
    fn scan_drops_torn_tail_but_keeps_earlier_commits() {
        let mut buf = log_with(&[page_frame(1, 0xA1), WalFrame::Commit { seq: 1 }], 1);
        let torn = encode_frame(&page_frame(2, 0xC2), 1).unwrap();
        buf.extend_from_slice(torn.get(..torn.len() / 2).unwrap());
        let out = scan_log(&buf, PS).unwrap();
        assert!(out.torn_tail);
        assert_eq!(out.committed, vec![(1, vec![0xA1; PS])]);
    }

    #[test]
    fn scan_tolerates_empty_and_torn_headers() {
        let out = scan_log(&[], PS).unwrap();
        assert!(!out.torn_tail);
        assert_eq!(out.header_epoch, 0);

        let header = encode_header(PS, 12).unwrap();
        for keep in [1, 5, WAL_HEADER - 1] {
            let out = scan_log(header.get(..keep).unwrap(), PS).unwrap();
            assert!(out.torn_tail, "prefix of {keep} bytes");
            assert!(out.committed.is_empty());
        }

        let mut garbage = header.clone();
        if let Some(b) = garbage.first_mut() {
            *b ^= 0xFF;
        }
        let out = scan_log(&garbage, PS).unwrap();
        assert!(out.torn_tail, "clobbered magic must scan as torn");
    }

    #[test]
    fn scan_rejects_page_size_mismatch() {
        let buf = log_with(&[], 1);
        assert!(matches!(
            scan_log(&buf, PS * 2),
            Err(PagerError::Corrupt(_))
        ));
    }

    #[test]
    fn stale_epoch_frames_scan_as_torn_tail() {
        // A truncate-then-append crash can leave frames of an older
        // generation exactly on a frame boundary; the epoch salt must
        // stop the scan there.
        let mut buf = log_with(&[page_frame(1, 0xA1), WalFrame::Commit { seq: 1 }], 9);
        let stale = encode_frame(&page_frame(3, 0xEE), 8).unwrap();
        buf.extend_from_slice(&stale);
        buf.extend_from_slice(&encode_frame(&WalFrame::Commit { seq: 4 }, 8).unwrap());
        let out = scan_log(&buf, PS).unwrap();
        assert!(out.torn_tail);
        assert_eq!(out.commits, 1, "stale commit must not be honored");
        assert_eq!(out.committed, vec![(1, vec![0xA1; PS])]);
    }
}
