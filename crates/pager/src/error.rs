//! Error type for the pager.

use std::fmt;
use std::io;

/// Result alias used throughout the pager (and re-used by the index crates
/// for their own I/O paths).
pub type Result<T> = std::result::Result<T, PagerError>;

/// Everything that can go wrong while reading or writing pages.
#[derive(Debug)]
pub enum PagerError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A page id past the end of the file was requested.
    PageOutOfRange {
        /// The offending page id.
        id: u64,
        /// Number of pages currently in the file.
        num_pages: u64,
    },
    /// Payload handed to `write` exceeds the usable page capacity.
    PayloadTooLarge {
        /// Bytes offered.
        len: usize,
        /// Bytes available in a page after the header.
        capacity: usize,
    },
    /// A page was read whose header kind differs from what the caller
    /// expected — almost always a sign of a corrupted or mistyped page id.
    KindMismatch {
        /// The offending page id.
        id: u64,
        /// Kind recorded in the page header.
        found: u8,
        /// Kind the caller asked for.
        expected: u8,
    },
    /// The file is not a page file, has a bad magic/version, or its header
    /// is internally inconsistent.
    Corrupt(String),
    /// API misuse caught at runtime: an operation was asked of a page id
    /// or kind it can never apply to (allocating a meta/free page,
    /// freeing the meta page).
    InvalidRequest(String),
    /// A [`PageCodec`](crate::PageCodec) read or write ran past the end of
    /// its buffer — a truncated or corrupted page payload (or, for writes,
    /// an entry that does not fit the page it was sized for).
    CodecOverrun {
        /// Cursor position at which the access was attempted.
        pos: usize,
        /// Bytes the access needed.
        want: usize,
        /// Total buffer length.
        len: usize,
    },
    /// A deliberately injected fault from the test kit's
    /// [`FaultInjector`](crate::FaultInjector). Distinguishable from real
    /// I/O errors so tests can assert the failure they armed is the one
    /// that surfaced.
    Injected {
        /// Which fault fired.
        kind: crate::FaultKind,
        /// The store-level operation count at which it fired.
        op: u64,
    },
}

impl fmt::Display for PagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagerError::Io(e) => write!(f, "page I/O failed: {e}"),
            PagerError::PageOutOfRange { id, num_pages } => {
                write!(f, "page {id} out of range (file has {num_pages} pages)")
            }
            PagerError::PayloadTooLarge { len, capacity } => {
                write!(f, "payload of {len} bytes exceeds page capacity {capacity}")
            }
            PagerError::KindMismatch {
                id,
                found,
                expected,
            } => write!(
                f,
                "page {id} has kind {found} but kind {expected} was expected"
            ),
            PagerError::Corrupt(msg) => write!(f, "page file corrupt: {msg}"),
            PagerError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            PagerError::CodecOverrun { pos, want, len } => write!(
                f,
                "page codec overrun: {want} byte(s) at offset {pos} in a {len}-byte buffer"
            ),
            PagerError::Injected { kind, op } => {
                write!(f, "injected fault {kind:?} at store op {op}")
            }
        }
    }
}

impl std::error::Error for PagerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PagerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PagerError {
    fn from(e: io::Error) -> Self {
        PagerError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PagerError::PageOutOfRange {
            id: 7,
            num_pages: 3,
        };
        assert!(e.to_string().contains("page 7"));
        let e = PagerError::KindMismatch {
            id: 1,
            found: 2,
            expected: 1,
        };
        assert!(e.to_string().contains("kind 2"));
    }

    #[test]
    fn io_error_converts() {
        let io = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: PagerError = io.into();
        assert!(matches!(e, PagerError::Io(_)));
    }
}
