//! The [`PageFile`]: a page store + buffer pool + free list + metadata
//! page, with per-kind I/O accounting.
//!
//! ## On-disk layout
//!
//! * Page 0 is the **metadata page**: magic, format version, page size,
//!   free-list head, and an opaque *user metadata* blob the index crates
//!   use to persist their root page id, dimensionality, and entry counts.
//! * Every other page carries a 5-byte header — kind byte + payload
//!   length (`u32`) — followed by the payload. [`PageFile::capacity`]
//!   reports the usable payload bytes per page; the index crates size
//!   their fanout from it (Table 1 of the paper).
//! * Freed pages are chained into a free list through their payload.
//!
//! ## Concurrency
//!
//! The read path is safe to drive from many threads at once. The buffer
//! pool is split into [`PageFile::CACHE_SHARDS`] lock-striped LRU shards
//! keyed by `page_id % CACHE_SHARDS`, so concurrent readers touching
//! different shards never contend; I/O counters are relaxed atomics
//! ([`crate::stats`]). A shard's lock is held across the read-through
//! (probe → store read → insert), which keeps the accounting exact —
//! every miss is exactly one physical read, with no duplicate fetches of
//! the same page — at the cost of serializing same-shard misses.
//!
//! The metadata state (free-list head, user metadata) has its own mutex.
//! Lock order is always meta → shard (allocate/free take the meta lock
//! first); the read/write path takes only a shard lock, so the ordering
//! cannot invert. Mutating operations (`allocate`/`free`/`write`/
//! `set_user_meta`/`flush`) remain single-writer by contract: they are
//! internally consistent, but the index crates' `&mut self` update paths
//! are what actually serializes structural changes.

// srlint: lock-order(meta < shard) -- allocate and free touch a page's cache shard while holding the free-list mutex; the read/write path takes only shard locks, so acquiring meta after a shard would invert the order and deadlock

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::sync::Mutex;

use crate::cache::LruCache;
use crate::error::{PagerError, Result};
use crate::page::{PageCodec, PageId, PageKind, DEFAULT_PAGE_SIZE};
use crate::stats::{AtomicIoStats, IoStats};
use crate::store::{FilePageStore, MemPageStore, PageStore};

const MAGIC: u32 = 0x5352_5047; // "SRPG"
const VERSION: u32 = 1;
/// kind (u8) + payload length (u32)
const PAGE_HEADER: usize = 5;
/// magic + version + page_size + free_head + user_meta_len
const META_HEADER: usize = 4 + 4 + 4 + 8 + 4;
/// "no page" sentinel for the free list (page 0 is the meta page).
const NIL: PageId = 0;

/// Free-list head and user metadata, guarded together because both live
/// on the meta page and are flushed as one unit.
struct MetaState {
    free_head: PageId,
    user_meta: Vec<u8>,
    meta_dirty: bool,
}

/// A page file: fixed-size pages addressed by [`PageId`], with a sharded
/// LRU buffer pool, a free list, persistent user metadata, and I/O
/// statistics.
///
/// All methods take `&self`. The read path (`read`, `stats`) is safe and
/// scalable under concurrent use; see the module docs for the locking
/// contract.
pub struct PageFile {
    store: Box<dyn PageStore>,
    page_size: usize,
    /// Lock-striped buffer pool; shard of page `id` is
    /// `id % CACHE_SHARDS`.
    shards: Vec<Mutex<LruCache>>,
    /// Total requested pool capacity (the sum of per-shard capacities).
    cache_pages: AtomicUsize,
    stats: AtomicIoStats,
    meta: Mutex<MetaState>,
}

impl PageFile {
    /// Default buffer-pool capacity for freshly created files, in pages.
    pub const DEFAULT_CACHE_PAGES: usize = 256;

    /// Number of lock stripes in the buffer pool. A small power of two:
    /// enough stripes that a typical batch-query worker pool (≤ 8-ish
    /// threads) rarely collides on a stripe, few enough that even modest
    /// pool capacities spread usefully across them.
    pub const CACHE_SHARDS: usize = 8;

    /// Split a total pool capacity across the shards: `total / SHARDS`
    /// each, with the remainder going one page at a time to the lowest
    /// shards. The sum is always exactly `total`, so the pool never holds
    /// more pages than asked for; capacities below [`Self::CACHE_SHARDS`]
    /// leave some shards cache-less (their pages read through).
    fn shard_capacities(total: usize) -> Vec<usize> {
        let base = total / Self::CACHE_SHARDS;
        let rem = total % Self::CACHE_SHARDS;
        (0..Self::CACHE_SHARDS)
            .map(|i| base + usize::from(i < rem))
            .collect()
    }

    fn new_shards(total: usize) -> Vec<Mutex<LruCache>> {
        Self::shard_capacities(total)
            .into_iter()
            .map(|cap| Mutex::new(LruCache::new(cap)))
            .collect()
    }

    /// The shard holding page `id`. Infallible in practice (the index is
    /// a modulus of the shard count); typed rather than panicking per the
    /// workspace's no-panic policy.
    fn shard(&self, id: PageId) -> Result<&Mutex<LruCache>> {
        let n = u64::try_from(self.shards.len())
            .map_err(|_| PagerError::Corrupt("shard count does not fit u64".into()))?;
        let idx = usize::try_from(id % n.max(1))
            .map_err(|_| PagerError::Corrupt("shard index does not fit usize".into()))?;
        self.shards
            .get(idx)
            .ok_or_else(|| PagerError::Corrupt(format!("shard {idx} out of range")))
    }

    /// Create a page file over an in-memory store.
    pub fn create_in_memory(page_size: usize) -> Result<PageFile> {
        Self::create_from_store(Box::new(MemPageStore::new(page_size)))
    }

    /// Create a page file at `path` with the default 8192-byte pages.
    pub fn create(path: &Path) -> Result<PageFile> {
        Self::create_with_page_size(path, DEFAULT_PAGE_SIZE)
    }

    /// Create a page file at `path` with an explicit page size.
    pub fn create_with_page_size(path: &Path, page_size: usize) -> Result<PageFile> {
        Self::create_from_store(Box::new(FilePageStore::create(path, page_size)?))
    }

    /// Create a page file over any store (the store must be empty).
    pub fn create_from_store(store: Box<dyn PageStore>) -> Result<PageFile> {
        let page_size = store.page_size();
        if page_size <= META_HEADER + PAGE_HEADER + 64 {
            return Err(PagerError::Corrupt(format!(
                "page size {page_size} too small to be useful"
            )));
        }
        store.grow(1)?;
        let pf = PageFile {
            store,
            page_size,
            shards: Self::new_shards(Self::DEFAULT_CACHE_PAGES),
            cache_pages: AtomicUsize::new(Self::DEFAULT_CACHE_PAGES),
            stats: AtomicIoStats::new(),
            meta: Mutex::new(MetaState {
                free_head: NIL,
                user_meta: Vec::new(),
                meta_dirty: true,
            }),
        };
        pf.flush()?;
        Ok(pf)
    }

    /// Open an existing page file at `path`, recovering page size and user
    /// metadata from the metadata page.
    pub fn open(path: &Path) -> Result<PageFile> {
        // The page size lives inside the meta page; peek at the raw header
        // first.
        let mut raw = std::fs::read(path)?;
        if raw.len() < META_HEADER {
            return Err(PagerError::Corrupt("file too short for a meta page".into()));
        }
        let mut c = PageCodec::new(raw.as_mut_slice());
        let magic = c.get_u32()?;
        let version = c.get_u32()?;
        let page_size = usize::try_from(c.get_u32()?)
            .map_err(|_| PagerError::Corrupt("page size does not fit usize".into()))?;
        if magic != MAGIC {
            return Err(PagerError::Corrupt(format!("bad magic {magic:#x}")));
        }
        if version != VERSION {
            return Err(PagerError::Corrupt(format!(
                "unsupported version {version}"
            )));
        }
        let store = Box::new(FilePageStore::open(path, page_size)?);
        Self::open_from_store(store)
    }

    /// Open a page file over any store already containing a meta page.
    pub fn open_from_store(store: Box<dyn PageStore>) -> Result<PageFile> {
        let page_size = store.page_size();
        let mut buf = vec![0u8; page_size];
        store.read_page(0, &mut buf)?;
        let mut c = PageCodec::new(&mut buf);
        if c.get_u32()? != MAGIC {
            return Err(PagerError::Corrupt("bad magic in meta page".into()));
        }
        if c.get_u32()? != VERSION {
            return Err(PagerError::Corrupt("unsupported version".into()));
        }
        let stored_ps = usize::try_from(c.get_u32()?)
            .map_err(|_| PagerError::Corrupt("page size does not fit usize".into()))?;
        if stored_ps != page_size {
            return Err(PagerError::Corrupt(format!(
                "meta page says page size {stored_ps}, store says {page_size}"
            )));
        }
        let free_head = c.get_u64()?;
        let meta_len = usize::try_from(c.get_u32()?)
            .map_err(|_| PagerError::Corrupt("metadata length does not fit usize".into()))?;
        if meta_len > page_size - META_HEADER {
            return Err(PagerError::Corrupt(format!(
                "user metadata length {meta_len} exceeds page"
            )));
        }
        let user_meta = c.get_bytes(meta_len)?.to_vec();
        Ok(PageFile {
            store,
            page_size,
            shards: Self::new_shards(Self::DEFAULT_CACHE_PAGES),
            cache_pages: AtomicUsize::new(Self::DEFAULT_CACHE_PAGES),
            stats: AtomicIoStats::new(),
            meta: Mutex::new(MetaState {
                free_head,
                user_meta,
                meta_dirty: false,
            }),
        })
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Usable payload bytes per page — what the index crates size their
    /// node fanout against.
    pub fn capacity(&self) -> usize {
        self.page_size - PAGE_HEADER
    }

    /// Maximum user-metadata blob size.
    pub fn user_meta_capacity(&self) -> usize {
        self.page_size - META_HEADER
    }

    /// Total pages in the file, including the meta page and free pages.
    pub fn num_pages(&self) -> u64 {
        self.store.num_pages()
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Zero the I/O counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Resize the buffer pool; `0` disables caching (every read and write
    /// goes straight to the store — the paper's cold-cache query mode).
    /// The capacity is split across the shards per
    /// [`PageFile::CACHE_SHARDS`].
    pub fn set_cache_capacity(&self, pages: usize) -> Result<()> {
        // srlint: ordering -- cache_pages is advisory bookkeeping read only by cache_capacity(); no other state is published through it
        self.cache_pages.store(pages, Ordering::Relaxed);
        for (shard, cap) in self.shards.iter().zip(Self::shard_capacities(pages)) {
            // Resize under the lock, write the spilled pages back after
            // releasing it; resizing is a mutating op, single-writer by
            // contract, so nobody can re-read the spilled ids in between.
            let spilled = shard.lock().set_capacity(cap);
            self.stats.record_cache_evictions(spilled.len() as u64);
            for ev in spilled {
                if let Some(data) = ev.dirty_data {
                    self.stats.record_physical_write();
                    self.store.write_page(ev.id, &data)?;
                }
            }
        }
        Ok(())
    }

    /// Current total buffer-pool capacity in pages (`0` = caching
    /// disabled).
    pub fn cache_capacity(&self) -> usize {
        // srlint: ordering -- pairs with the relaxed store in set_cache_capacity; a plain monotonic-ish counter read, nothing is synchronized through it
        self.cache_pages.load(Ordering::Relaxed)
    }

    /// The persistent user metadata blob (index root id etc.).
    pub fn user_meta(&self) -> Vec<u8> {
        self.meta.lock().user_meta.clone()
    }

    /// Replace the user metadata blob. Persisted on the next
    /// [`PageFile::flush`].
    pub fn set_user_meta(&self, meta: &[u8]) -> Result<()> {
        if meta.len() > self.user_meta_capacity() {
            return Err(PagerError::PayloadTooLarge {
                len: meta.len(),
                capacity: self.user_meta_capacity(),
            });
        }
        let mut state = self.meta.lock();
        state.user_meta = meta.to_vec();
        state.meta_dirty = true;
        Ok(())
    }

    /// Allocate a page, reusing the free list when possible. The page is
    /// initialized with an empty payload of the given kind.
    pub fn allocate(&self, kind: PageKind) -> Result<PageId> {
        assert!(
            kind != PageKind::Meta && kind != PageKind::Free,
            "cannot allocate {kind:?}"
        );
        let id = {
            // meta → shard lock order: read_raw below takes the shard lock
            // while we hold the meta lock.
            let mut state = self.meta.lock();
            if state.free_head != NIL {
                let id = state.free_head;
                // Next pointer lives in the freed page's payload.
                let mut data = self.read_raw(id)?;
                let mut c = PageCodec::new(&mut data);
                let k = c.get_u8()?;
                if k != PageKind::Free.as_u8() {
                    return Err(PagerError::Corrupt(format!(
                        "free-list page {id} has kind {k}"
                    )));
                }
                c.skip(4)?; // stored payload length, unused here
                state.free_head = c.get_u64()?;
                state.meta_dirty = true;
                Some(id)
            } else {
                None
            }
        };
        let id = match id {
            Some(id) => id,
            None => {
                let id = self.store.num_pages();
                self.store.grow(id + 1)?;
                id
            }
        };
        self.write(id, kind, &[])?;
        Ok(id)
    }

    /// Return a page to the free list.
    pub fn free(&self, id: PageId) -> Result<()> {
        assert!(id != 0, "cannot free the meta page");
        let head = {
            // meta → shard: drop the page from its cache shard while the
            // free-list head is pinned, then release both before the store
            // write. free() is a mutating op — single-writer by contract —
            // so the head cannot move between this block and the re-lock
            // below.
            let state = self.meta.lock();
            self.shard(id)?.lock().remove(id);
            state.free_head
        };
        let mut page = vec![0u8; self.page_size];
        {
            let mut c = PageCodec::new(&mut page);
            c.put_u8(PageKind::Free.as_u8())?;
            c.put_u32(8)?;
            c.put_u64(head)?;
        }
        self.stats.record_physical_write();
        // The store write lands before the in-memory head moves, so a
        // failed write leaves the free list pointing at the old chain.
        self.store.write_page(id, &page)?;
        let mut state = self.meta.lock();
        state.free_head = id;
        state.meta_dirty = true;
        Ok(())
    }

    /// Cache-through read of the raw page bytes. The shard lock is held
    /// across probe → store read → insert so that accounting stays exact
    /// under concurrency: every miss is exactly one physical read.
    fn read_raw(&self, id: PageId) -> Result<Box<[u8]>> {
        let mut cache = self.shard(id)?.lock();
        if let Some(data) = cache.get(id) {
            self.stats.record_cache_hit();
            return Ok(data.to_vec().into_boxed_slice());
        }
        self.stats.record_cache_miss();
        let mut buf = vec![0u8; self.page_size].into_boxed_slice();
        self.stats.record_physical_read();
        // srlint: allow(lock-io) -- the sanctioned read-through: releasing the shard between probe and store read would double-fetch concurrent misses and break misses == physical_reads
        self.store.read_page(id, &mut buf)?;
        if let Some(ev) = cache.insert(id, buf.clone(), false) {
            self.stats.record_cache_evictions(1);
            if let Some(dirty) = ev.dirty_data {
                self.stats.record_physical_write();
                // srlint: allow(lock-io) -- write-back of a page evicted by the read path; outside the lock a concurrent miss on ev.id could read the stale image from the store
                self.store.write_page(ev.id, &dirty)?;
            }
        }
        Ok(buf)
    }

    /// Read the payload of page `id`, checking that its kind matches.
    pub fn read(&self, id: PageId, expected: PageKind) -> Result<Vec<u8>> {
        self.stats.record_logical_read(expected);
        let mut data = self.read_raw(id)?;
        let mut c = PageCodec::new(&mut data);
        let kind = c.get_u8()?;
        if kind != expected.as_u8() {
            return Err(PagerError::KindMismatch {
                id,
                found: kind,
                expected: expected.as_u8(),
            });
        }
        let len = usize::try_from(c.get_u32()?)
            .map_err(|_| PagerError::Corrupt("payload length does not fit usize".into()))?;
        if len > self.capacity() {
            return Err(PagerError::Corrupt(format!(
                "page {id} claims payload of {len} bytes"
            )));
        }
        Ok(c.get_bytes(len)?.to_vec())
    }

    /// Write `payload` to page `id` with the given kind.
    pub fn write(&self, id: PageId, kind: PageKind, payload: &[u8]) -> Result<()> {
        if payload.len() > self.capacity() {
            return Err(PagerError::PayloadTooLarge {
                len: payload.len(),
                capacity: self.capacity(),
            });
        }
        let len = u32::try_from(payload.len()).map_err(|_| PagerError::PayloadTooLarge {
            len: payload.len(),
            capacity: self.capacity(),
        })?;
        let mut page = vec![0u8; self.page_size].into_boxed_slice();
        {
            let mut c = PageCodec::new(&mut page);
            c.put_u8(kind.as_u8())?;
            c.put_u32(len)?;
            c.put_bytes(payload)?;
        }
        self.stats.record_logical_write(kind);
        // Decide under the shard lock, do the store write after releasing
        // it. write() is a mutating op — single-writer by contract — so no
        // concurrent reader can race the write-through or the evicted
        // page's write-back out of the store.
        let write_back = {
            let mut cache = self.shard(id)?.lock();
            if cache.capacity() == 0 {
                // This page's shard has no pool space (total capacity 0,
                // or fewer total pages than shards): write through.
                Some((id, page))
            } else if let Some(ev) = cache.insert(id, page, true) {
                self.stats.record_cache_evictions(1);
                ev.dirty_data.map(|dirty| (ev.id, dirty))
            } else {
                None
            }
        };
        if let Some((out_id, data)) = write_back {
            self.stats.record_physical_write();
            self.store.write_page(out_id, &data)?;
        }
        Ok(())
    }

    /// Write back every dirty page and the metadata page, then sync the
    /// store.
    pub fn flush(&self) -> Result<()> {
        // Shard locks are taken one at a time and released before the meta
        // lock, so this cannot invert the meta → shard ordering.
        for shard in &self.shards {
            let dirty = shard.lock().drain_dirty();
            for (id, data) in dirty {
                self.stats.record_physical_write();
                self.store.write_page(id, &data)?;
            }
        }
        // Snapshot the meta page under the lock, write it back after
        // releasing it; meta_dirty is cleared only once the write lands,
        // so a failed flush retries the meta page next time.
        let meta_page = {
            let state = self.meta.lock();
            if state.meta_dirty {
                let page_size = u32::try_from(self.page_size)
                    .map_err(|_| PagerError::Corrupt("page size does not fit u32".into()))?;
                let meta_len = u32::try_from(state.user_meta.len()).map_err(|_| {
                    PagerError::Corrupt("user metadata length does not fit u32".into())
                })?;
                let mut page = vec![0u8; self.page_size];
                let mut c = PageCodec::new(&mut page);
                c.put_u32(MAGIC)?;
                c.put_u32(VERSION)?;
                c.put_u32(page_size)?;
                c.put_u64(state.free_head)?;
                c.put_u32(meta_len)?;
                c.put_bytes(&state.user_meta)?;
                Some(page)
            } else {
                None
            }
        };
        if let Some(page) = meta_page {
            self.stats.record_physical_write();
            self.store.write_page(0, &page)?;
            self.meta.lock().meta_dirty = false;
        }
        self.store.sync()?;
        Ok(())
    }
}

impl Drop for PageFile {
    fn drop(&mut self) {
        // Best-effort durability; errors on drop have nowhere to go.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_memory() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let id = pf.allocate(PageKind::Leaf).unwrap();
        pf.write(id, PageKind::Leaf, b"payload").unwrap();
        assert_eq!(pf.read(id, PageKind::Leaf).unwrap(), b"payload");
    }

    #[test]
    fn kind_mismatch_detected() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let id = pf.allocate(PageKind::Leaf).unwrap();
        assert!(matches!(
            pf.read(id, PageKind::Node),
            Err(PagerError::KindMismatch { .. })
        ));
    }

    #[test]
    fn payload_too_large_rejected() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let id = pf.allocate(PageKind::Node).unwrap();
        let big = vec![0u8; pf.capacity() + 1];
        assert!(matches!(
            pf.write(id, PageKind::Node, &big),
            Err(PagerError::PayloadTooLarge { .. })
        ));
        // exactly at capacity is fine
        let fit = vec![7u8; pf.capacity()];
        pf.write(id, PageKind::Node, &fit).unwrap();
        assert_eq!(pf.read(id, PageKind::Node).unwrap(), fit);
    }

    #[test]
    fn free_list_reuses_pages() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let a = pf.allocate(PageKind::Leaf).unwrap();
        let b = pf.allocate(PageKind::Leaf).unwrap();
        let before = pf.num_pages();
        pf.free(a).unwrap();
        pf.free(b).unwrap();
        // LIFO reuse
        assert_eq!(pf.allocate(PageKind::Node).unwrap(), b);
        assert_eq!(pf.allocate(PageKind::Node).unwrap(), a);
        assert_eq!(pf.num_pages(), before, "no growth while free pages exist");
    }

    #[test]
    fn stats_count_logical_and_physical() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let id = pf.allocate(PageKind::Leaf).unwrap();
        pf.write(id, PageKind::Leaf, b"x").unwrap();
        pf.reset_stats();

        // cached: two logical reads, zero physical
        let _ = pf.read(id, PageKind::Leaf).unwrap();
        let _ = pf.read(id, PageKind::Leaf).unwrap();
        let s = pf.stats();
        assert_eq!(s.logical_reads(PageKind::Leaf), 2);
        assert_eq!(s.physical_reads(), 0);

        // disable the cache: now every logical read is physical
        pf.set_cache_capacity(0).unwrap();
        pf.reset_stats();
        let _ = pf.read(id, PageKind::Leaf).unwrap();
        let s = pf.stats();
        assert_eq!(s.logical_reads(PageKind::Leaf), 1);
        assert_eq!(s.physical_reads(), 1);
    }

    #[test]
    fn cold_cache_write_goes_straight_to_store() {
        let pf = PageFile::create_in_memory(512).unwrap();
        pf.set_cache_capacity(0).unwrap();
        let id = pf.allocate(PageKind::Node).unwrap();
        pf.reset_stats();
        pf.write(id, PageKind::Node, b"data").unwrap();
        assert_eq!(pf.stats().physical_writes(), 1);
        assert_eq!(pf.read(id, PageKind::Node).unwrap(), b"data");
    }

    #[test]
    fn user_meta_roundtrip_and_limit() {
        let pf = PageFile::create_in_memory(512).unwrap();
        pf.set_user_meta(b"root=42").unwrap();
        assert_eq!(pf.user_meta(), b"root=42");
        let too_big = vec![0u8; pf.user_meta_capacity() + 1];
        assert!(pf.set_user_meta(&too_big).is_err());
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = std::env::temp_dir().join(format!("sr-pagefile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persist.pages");
        let (a, b);
        {
            let pf = PageFile::create_with_page_size(&path, 512).unwrap();
            a = pf.allocate(PageKind::Node).unwrap();
            b = pf.allocate(PageKind::Leaf).unwrap();
            pf.write(a, PageKind::Node, b"node-data").unwrap();
            pf.write(b, PageKind::Leaf, b"leaf-data").unwrap();
            pf.set_user_meta(b"meta!").unwrap();
            pf.flush().unwrap();
        }
        {
            let pf = PageFile::open(&path).unwrap();
            assert_eq!(pf.page_size(), 512);
            assert_eq!(pf.user_meta(), b"meta!");
            assert_eq!(pf.read(a, PageKind::Node).unwrap(), b"node-data");
            assert_eq!(pf.read(b, PageKind::Leaf).unwrap(), b"leaf-data");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn free_list_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("sr-pagefile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("freelist.pages");
        let freed;
        {
            let pf = PageFile::create_with_page_size(&path, 512).unwrap();
            let _keep = pf.allocate(PageKind::Leaf).unwrap();
            freed = pf.allocate(PageKind::Leaf).unwrap();
            pf.free(freed).unwrap();
            pf.flush().unwrap();
        }
        {
            let pf = PageFile::open(&path).unwrap();
            assert_eq!(pf.allocate(PageKind::Leaf).unwrap(), freed);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("sr-pagefile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.pages");
        std::fs::write(&path, vec![0x55u8; 1024]).unwrap();
        assert!(matches!(PageFile::open(&path), Err(PagerError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_counters_track_hits_misses_and_evictions() {
        // One page of pool per shard, two pages of data per shard: a sweep
        // over all pages thrashes every shard deterministically.
        let shards = PageFile::CACHE_SHARDS;
        let pf = PageFile::create_in_memory(512).unwrap();
        pf.set_cache_capacity(shards).unwrap();
        let ids: Vec<_> = (0..2 * shards)
            .map(|i| {
                let id = pf.allocate(PageKind::Leaf).unwrap();
                pf.write(id, PageKind::Leaf, &[i as u8; 8]).unwrap();
                id
            })
            .collect();
        pf.reset_stats();

        // Sweep all pages: each shard's single slot always holds the
        // other page of its pair, so every read misses, and because the
        // writes above left each slot full, every miss also evicts.
        for &id in &ids {
            let _ = pf.read(id, PageKind::Leaf).unwrap();
        }
        let s = pf.stats();
        assert_eq!(s.cache_misses(), 2 * shards as u64);
        assert_eq!(
            s.cache_misses(),
            s.physical_reads(),
            "every miss is exactly one physical read"
        );
        assert_eq!(
            s.cache_evictions(),
            2 * shards as u64,
            "full pool: one eviction per miss"
        );

        // Re-read the second half (the resident page of each shard): pure
        // hits.
        pf.reset_stats();
        for &id in &ids[shards..] {
            let _ = pf.read(id, PageKind::Leaf).unwrap();
        }
        let s = pf.stats();
        assert_eq!(s.cache_hits(), shards as u64);
        assert_eq!(s.cache_misses(), 0);
        assert_eq!(s.cache_hit_rate(), Some(1.0));

        // Shrinking the pool counts its spills as evictions.
        pf.reset_stats();
        pf.set_cache_capacity(0).unwrap();
        assert_eq!(pf.stats().cache_evictions(), shards as u64);
        assert_eq!(pf.cache_capacity(), 0);
    }

    #[test]
    fn concurrent_reads_keep_accounting_exact() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let ids: Vec<_> = (0..32u8)
            .map(|i| {
                let id = pf.allocate(PageKind::Leaf).unwrap();
                pf.write(id, PageKind::Leaf, &[i; 8]).unwrap();
                id
            })
            .collect();
        pf.flush().unwrap();
        // Small pool so concurrent sweeps force misses and evictions.
        pf.set_cache_capacity(8).unwrap();
        pf.reset_stats();

        const THREADS: u64 = 4;
        const ROUNDS: u64 = 50;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        for (i, &id) in ids.iter().enumerate() {
                            let data = pf.read(id, PageKind::Leaf).unwrap();
                            assert_eq!(data, vec![i as u8; 8], "torn or misrouted page");
                        }
                    }
                });
            }
        });

        let s = pf.stats();
        assert_eq!(
            s.logical_reads(PageKind::Leaf),
            THREADS * ROUNDS * ids.len() as u64,
            "no logical read lost"
        );
        assert_eq!(
            s.cache_hits() + s.cache_misses(),
            s.logical_reads(PageKind::Leaf),
            "every probe is exactly one hit or one miss"
        );
        assert_eq!(
            s.cache_misses(),
            s.physical_reads(),
            "every miss is exactly one physical read, even under contention"
        );
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let pf = PageFile::create_in_memory(512).unwrap();
        pf.set_cache_capacity(2).unwrap();
        let ids: Vec<_> = (0..8)
            .map(|i| {
                let id = pf.allocate(PageKind::Leaf).unwrap();
                pf.write(id, PageKind::Leaf, &[i as u8; 16]).unwrap();
                id
            })
            .collect();
        // Everything must still be readable even though only 2 pages fit in
        // the pool.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pf.read(id, PageKind::Leaf).unwrap(), vec![i as u8; 16]);
        }
    }
}
