//! The [`PageFile`]: a page store + write-ahead log + buffer pool +
//! free list + metadata page, with per-kind I/O accounting.
//!
//! ## On-disk layout
//!
//! * Page 0 is the **metadata page**: magic, format version, page size,
//!   free-list head, and an opaque *user metadata* blob the index crates
//!   use to persist their root page id, dimensionality, and entry counts.
//! * Every other page carries a 5-byte header — kind byte + payload
//!   length (`u32`) — followed by the payload. [`PageFile::capacity`]
//!   reports the usable payload bytes per page; the index crates size
//!   their fanout from it (Table 1 of the paper).
//! * Freed pages are chained into a free list through their payload.
//! * A sibling **write-ahead log** ([`crate::wal`]) holds every page
//!   image written since the last checkpoint.
//!
//! ## Durability: redo-only WAL
//!
//! Between [`PageFile::flush`] calls the store is never written in
//! place: every mutation appends a checksummed full-page redo frame to
//! the log and caches a clean copy. `flush` is the commit point — it
//! appends a commit marker, fsyncs the log (the durability barrier),
//! copies the latest image of each logged page into the store
//! (checkpoint), fsyncs the store, and truncates the log. A crash at
//! any instant therefore leaves the store at its last checkpoint plus a
//! log whose committed frames [`PageFile::open`] replays before the
//! pager serves reads; uncommitted or torn tail frames are discarded by
//! checksum. Recovery is idempotent: replaying a committed generation
//! twice rewrites the same images.
//!
//! ## Concurrency
//!
//! The read path is safe to drive from many threads at once. The buffer
//! pool is split into [`PageFile::CACHE_SHARDS`] lock-striped LRU shards
//! keyed by `page_id % CACHE_SHARDS`, so concurrent readers touching
//! different shards never contend; I/O counters are relaxed atomics
//! ([`crate::stats`]). A shard's lock is held across the read-through
//! (probe → WAL-index probe → log or store read → insert), which keeps
//! the accounting exact — every miss is exactly one physical read, with
//! no duplicate fetches of the same page — at the cost of serializing
//! same-shard misses.
//!
//! The metadata state (free-list head, user metadata) has its own
//! mutex, as does the WAL append state (frame index, log length,
//! epoch). The lock order is the total chain meta → shard → wal:
//! allocate/free take meta first, the read path takes a shard lock and
//! probes the WAL index under it, and nothing acquires meta or a shard
//! while holding the WAL lock (log I/O is staged under the WAL lock but
//! performed after releasing it). Mutating operations (`allocate`/
//! `free`/`write`/`set_user_meta`/`flush`) remain single-writer by
//! contract: they are internally consistent, but the index crates'
//! `&mut self` update paths are what actually serializes structural
//! changes.

// srlint: lock-order(meta < shard) -- allocate and free touch a page's cache shard while holding the free-list mutex; the read/write path takes only shard locks, so acquiring meta after a shard would invert the order and deadlock
// srlint: lock-order(meta < wal) -- allocate reads free-list pages (and so probes the WAL index) while holding the free-list mutex; the WAL lock is always innermost
// srlint: lock-order(shard < wal) -- the read-through probes the WAL index while holding the page's shard lock; acquiring a shard while holding the WAL lock would invert the order and deadlock

use std::collections::HashMap;
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;

use crate::cache::LruCache;
use crate::error::{PagerError, Result};
use crate::logstore::{wal_file_path, FileLogStore, LogStore, MemLogStore};
use crate::page::{PageCodec, PageId, PageKind, PageReader, DEFAULT_PAGE_SIZE};
use crate::stats::{AtomicIoStats, IoStats};
use crate::store::{FilePageStore, MemPageStore, PageStore};
use crate::wal::{
    encode_commit_frame, encode_header, encode_page_frame, scan_log, AtomicWalStats, WalStats,
    FRAME_HEADER,
};

const MAGIC: u32 = 0x5352_5047; // "SRPG"
const VERSION: u32 = 1;
/// kind (u8) + payload length (u32)
const PAGE_HEADER: usize = 5;
/// magic + version + page_size + free_head + user_meta_len
const META_HEADER: usize = 4 + 4 + 4 + 8 + 4;
/// "no page" sentinel for the free list (page 0 is the meta page).
const NIL: PageId = 0;

/// Free-list head and user metadata, guarded together because both live
/// on the meta page and are flushed as one unit.
struct MetaState {
    free_head: PageId,  // srlint: guarded-by(meta)
    user_meta: Vec<u8>, // srlint: guarded-by(meta)
    meta_dirty: bool,   // srlint: guarded-by(meta)
}

/// Append state of the current write-ahead-log generation.
struct WalState {
    /// Offset of the latest logged frame of each page in this
    /// generation. The read path serves these pages from the log; the
    /// checkpoint in [`PageFile::flush`] copies them into the store.
    index: HashMap<PageId, u64>, // srlint: guarded-by(wal)
    /// Logical length of the log: the next append offset. Advanced only
    /// after the log write succeeds, so a failed or torn append is
    /// overwritten in place by the retry instead of burying garbage
    /// mid-log.
    len: u64, // srlint: guarded-by(wal)
    /// Checksum salt of this generation; bumped on every truncation so
    /// stale frames from earlier generations can never replay.
    epoch: u64, // srlint: guarded-by(wal)
    /// Commit markers appended in this generation.
    commit_seq: u64, // srlint: guarded-by(wal)
}

/// A zero-copy view of one page's payload.
///
/// Holds a shared reference to the buffer pool's immutable page image
/// plus the payload's byte range, and dereferences to `&[u8]`. Page
/// images are never mutated in place — a write installs a fresh image —
/// so the view is immutable and remains valid after eviction or
/// overwrite of the page it came from.
#[derive(Clone)]
pub struct PageBuf {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Deref for PageBuf {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        // The range is validated against the image in `PageFile::read`;
        // an out-of-sync view degrades to empty rather than panicking.
        self.data.get(self.start..self.end).unwrap_or(&[])
    }
}

impl AsRef<[u8]> for PageBuf {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq<[u8]> for PageBuf {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for PageBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for PageBuf {
    fn eq(&self, other: &&[u8; N]) -> bool {
        **self == other[..]
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageBuf")
            .field("len", &(self.end - self.start))
            .finish()
    }
}

/// A page file: fixed-size pages addressed by [`PageId`], with a
/// write-ahead log, a sharded LRU buffer pool, a free list, persistent
/// user metadata, and I/O statistics.
///
/// All methods take `&self`. The read path (`read`, `stats`) is safe and
/// scalable under concurrent use; see the module docs for the locking
/// contract.
// srlint: send-sync -- every field is behind the meta/wal/shard locks or an atomic; the store, log, and page size are fixed at construction and only read afterwards
pub struct PageFile {
    store: Box<dyn PageStore>, // srlint: guarded-by(owner)
    log: Box<dyn LogStore>,    // srlint: guarded-by(owner)
    page_size: usize,          // srlint: guarded-by(owner)
    /// Lock-striped buffer pool; shard of page `id` is
    /// `id % CACHE_SHARDS`.
    shards: Vec<Mutex<LruCache>>,
    /// Total requested pool capacity (the sum of per-shard capacities).
    cache_pages: AtomicUsize,
    stats: AtomicIoStats,
    meta: Mutex<MetaState>,
    wal: Mutex<WalState>,
    wal_stats: AtomicWalStats,
}

impl PageFile {
    /// Default buffer-pool capacity for freshly created files, in pages.
    pub const DEFAULT_CACHE_PAGES: usize = 256;

    /// Number of lock stripes in the buffer pool. A small power of two:
    /// enough stripes that a typical batch-query worker pool (≤ 8-ish
    /// threads) rarely collides on a stripe, few enough that even modest
    /// pool capacities spread usefully across them.
    pub const CACHE_SHARDS: usize = 8;

    /// Split a total pool capacity across the shards: `total / SHARDS`
    /// each, with the remainder going one page at a time to the lowest
    /// shards. The sum is always exactly `total`, so the pool never holds
    /// more pages than asked for; capacities below [`Self::CACHE_SHARDS`]
    /// leave some shards cache-less (their pages read through).
    fn shard_capacities(total: usize) -> Vec<usize> {
        let base = total / Self::CACHE_SHARDS;
        let rem = total % Self::CACHE_SHARDS;
        (0..Self::CACHE_SHARDS)
            .map(|i| base + usize::from(i < rem))
            .collect()
    }

    fn new_shards(total: usize) -> Vec<Mutex<LruCache>> {
        Self::shard_capacities(total)
            .into_iter()
            .map(|cap| Mutex::new(LruCache::new(cap)))
            .collect()
    }

    /// The shard holding page `id`. Infallible in practice (the index is
    /// a modulus of the shard count); typed rather than panicking per the
    /// workspace's no-panic policy.
    fn shard(&self, id: PageId) -> Result<&Mutex<LruCache>> {
        let n = u64::try_from(self.shards.len())
            .map_err(|_| PagerError::Corrupt("shard count does not fit u64".into()))?;
        let idx = usize::try_from(id % n.max(1))
            .map_err(|_| PagerError::Corrupt("shard index does not fit usize".into()))?;
        self.shards
            .get(idx)
            .ok_or_else(|| PagerError::Corrupt(format!("shard {idx} out of range")))
    }

    /// Create a page file over an in-memory store (with an in-memory
    /// write-ahead log).
    pub fn create_in_memory(page_size: usize) -> Result<PageFile> {
        Self::create_from_store(Box::new(MemPageStore::new(page_size)))
    }

    /// Create a page file at `path` with the default 8192-byte pages.
    /// The write-ahead log lives beside it at `<path>.wal`.
    pub fn create(path: &Path) -> Result<PageFile> {
        Self::create_with_page_size(path, DEFAULT_PAGE_SIZE)
    }

    /// Create a page file at `path` with an explicit page size.
    pub fn create_with_page_size(path: &Path, page_size: usize) -> Result<PageFile> {
        Self::create_from_parts(
            Box::new(FilePageStore::create(path, page_size)?),
            Box::new(FileLogStore::create(&wal_file_path(path))?),
        )
    }

    /// Create a page file over any store (the store must be empty), with
    /// an in-memory write-ahead log.
    pub fn create_from_store(store: Box<dyn PageStore>) -> Result<PageFile> {
        Self::create_from_parts(store, Box::new(MemLogStore::new()))
    }

    /// Create a page file over an explicit page store and log store
    /// (both must be empty).
    pub fn create_from_parts(
        store: Box<dyn PageStore>,
        log: Box<dyn LogStore>,
    ) -> Result<PageFile> {
        let page_size = store.page_size();
        if page_size <= META_HEADER + PAGE_HEADER + 64 {
            return Err(PagerError::Corrupt(format!(
                "page size {page_size} too small to be useful"
            )));
        }
        log.truncate_log(0)?;
        store.grow(1)?;
        let pf = PageFile {
            store,
            log,
            page_size,
            shards: Self::new_shards(Self::DEFAULT_CACHE_PAGES),
            cache_pages: AtomicUsize::new(Self::DEFAULT_CACHE_PAGES),
            stats: AtomicIoStats::new(),
            meta: Mutex::new(MetaState {
                free_head: NIL,
                user_meta: Vec::new(),
                meta_dirty: true,
            }),
            wal: Mutex::new(WalState {
                index: HashMap::new(),
                len: 0,
                epoch: 1,
                commit_seq: 0,
            }),
            wal_stats: AtomicWalStats::new(),
        };
        pf.flush()?;
        Ok(pf)
    }

    /// Open an existing page file at `path`, replaying its write-ahead
    /// log (`<path>.wal`, if present) and recovering page size and user
    /// metadata from the metadata page.
    pub fn open(path: &Path) -> Result<PageFile> {
        // The page size lives inside the meta page; peek at the raw header
        // first.
        let mut raw = std::fs::read(path)?;
        if raw.len() < META_HEADER {
            return Err(PagerError::Corrupt("file too short for a meta page".into()));
        }
        let mut c = PageCodec::new(raw.as_mut_slice());
        let magic = c.get_u32()?;
        let version = c.get_u32()?;
        let page_size = usize::try_from(c.get_u32()?)
            .map_err(|_| PagerError::Corrupt("page size does not fit usize".into()))?;
        if magic != MAGIC {
            return Err(PagerError::Corrupt(format!("bad magic {magic:#x}")));
        }
        if version != VERSION {
            return Err(PagerError::Corrupt(format!(
                "unsupported version {version}"
            )));
        }
        Self::open_from_parts(
            Box::new(FilePageStore::open(path, page_size)?),
            Box::new(FileLogStore::open_or_create(&wal_file_path(path))?),
        )
    }

    /// Open a page file over any store already containing a meta page,
    /// with an (empty) in-memory write-ahead log.
    pub fn open_from_store(store: Box<dyn PageStore>) -> Result<PageFile> {
        Self::open_from_parts(store, Box::new(MemLogStore::new()))
    }

    /// Open a page file over an explicit page store and log store,
    /// replaying the log's committed frames into the store *before* the
    /// pager serves any read. Torn or uncommitted tail frames are
    /// discarded by checksum; the surviving log is truncated and a new
    /// generation (strictly larger epoch) begins.
    pub fn open_from_parts(store: Box<dyn PageStore>, log: Box<dyn LogStore>) -> Result<PageFile> {
        let page_size = store.page_size();
        let wal_stats = AtomicWalStats::new();

        // Replay scan over the whole surviving log image.
        let log_len = usize::try_from(log.log_len())
            .map_err(|_| PagerError::Corrupt("log length does not fit usize".into()))?;
        let mut raw = vec![0u8; log_len];
        if log_len > 0 {
            log.read_log_at(0, &mut raw)?;
        }
        let scan = scan_log(&raw, page_size)?;
        wal_stats.record_replay(&scan);

        // Reapply committed images, then make the store durable. This is
        // idempotent: a crash mid-replay leaves the same committed log,
        // and the next open rewrites the same images.
        if !scan.committed.is_empty() {
            for (id, image) in &scan.committed {
                let need = id.saturating_add(1);
                if need > store.num_pages() {
                    store.grow(need)?;
                }
                store.write_page(*id, image)?;
            }
            store.sync()?;
        }

        // The old generation is spent; drop it durably and start a new
        // one with a strictly larger epoch so any bytes the filesystem
        // resurrects from it can never pass a checksum again.
        log.truncate_log(0)?;
        log.sync_log()?;
        let epoch = scan.header_epoch.wrapping_add(1).max(1);

        let mut buf = vec![0u8; page_size];
        store.read_page(0, &mut buf)?;
        let mut c = PageCodec::new(&mut buf);
        if c.get_u32()? != MAGIC {
            return Err(PagerError::Corrupt("bad magic in meta page".into()));
        }
        if c.get_u32()? != VERSION {
            return Err(PagerError::Corrupt("unsupported version".into()));
        }
        let stored_ps = usize::try_from(c.get_u32()?)
            .map_err(|_| PagerError::Corrupt("page size does not fit usize".into()))?;
        if stored_ps != page_size {
            return Err(PagerError::Corrupt(format!(
                "meta page says page size {stored_ps}, store says {page_size}"
            )));
        }
        let free_head = c.get_u64()?;
        let meta_len = usize::try_from(c.get_u32()?)
            .map_err(|_| PagerError::Corrupt("metadata length does not fit usize".into()))?;
        if meta_len > page_size - META_HEADER {
            return Err(PagerError::Corrupt(format!(
                "user metadata length {meta_len} exceeds page"
            )));
        }
        let user_meta = c.get_bytes(meta_len)?.to_vec();
        Ok(PageFile {
            store,
            log,
            page_size,
            shards: Self::new_shards(Self::DEFAULT_CACHE_PAGES),
            cache_pages: AtomicUsize::new(Self::DEFAULT_CACHE_PAGES),
            stats: AtomicIoStats::new(),
            meta: Mutex::new(MetaState {
                free_head,
                user_meta,
                meta_dirty: false,
            }),
            wal: Mutex::new(WalState {
                index: HashMap::new(),
                len: 0,
                epoch,
                commit_seq: 0,
            }),
            wal_stats,
        })
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Usable payload bytes per page — what the index crates size their
    /// node fanout against.
    pub fn capacity(&self) -> usize {
        self.page_size - PAGE_HEADER
    }

    /// Maximum user-metadata blob size.
    pub fn user_meta_capacity(&self) -> usize {
        self.page_size - META_HEADER
    }

    /// Total pages in the file, including the meta page and free pages.
    pub fn num_pages(&self) -> u64 {
        self.store.num_pages()
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Zero the I/O counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Snapshot of the write-ahead-log counters.
    pub fn wal_stats(&self) -> WalStats {
        let wal_bytes = self.wal.lock().len;
        self.wal_stats.snapshot(wal_bytes)
    }

    /// Resize the buffer pool; `0` disables caching (every read goes
    /// straight to the log or store — the paper's cold-cache query
    /// mode). The capacity is split across the shards per
    /// [`PageFile::CACHE_SHARDS`]. The pool only ever holds clean copies
    /// of logged or checkpointed images, so spilled pages are simply
    /// dropped.
    pub fn set_cache_capacity(&self, pages: usize) -> Result<()> {
        // srlint: ordering -- cache_pages is advisory bookkeeping read only by cache_capacity(); no other state is published through it
        self.cache_pages.store(pages, Ordering::Relaxed);
        for (shard, cap) in self.shards.iter().zip(Self::shard_capacities(pages)) {
            let spilled = shard.lock().set_capacity(cap);
            self.stats.record_cache_evictions(spilled as u64);
        }
        Ok(())
    }

    /// Current total buffer-pool capacity in pages (`0` = caching
    /// disabled).
    pub fn cache_capacity(&self) -> usize {
        // srlint: ordering -- pairs with the relaxed store in set_cache_capacity; a plain monotonic-ish counter read, nothing is synchronized through it
        self.cache_pages.load(Ordering::Relaxed)
    }

    /// The persistent user metadata blob (index root id etc.).
    pub fn user_meta(&self) -> Vec<u8> {
        self.meta.lock().user_meta.clone()
    }

    /// Replace the user metadata blob. Persisted on the next
    /// [`PageFile::flush`].
    pub fn set_user_meta(&self, meta: &[u8]) -> Result<()> {
        if meta.len() > self.user_meta_capacity() {
            return Err(PagerError::PayloadTooLarge {
                len: meta.len(),
                capacity: self.user_meta_capacity(),
            });
        }
        let mut state = self.meta.lock();
        state.user_meta = meta.to_vec();
        state.meta_dirty = true;
        Ok(())
    }

    /// Allocate a page, reusing the free list when possible. The page is
    /// initialized with an empty payload of the given kind.
    pub fn allocate(&self, kind: PageKind) -> Result<PageId> {
        if kind == PageKind::Meta || kind == PageKind::Free {
            return Err(PagerError::InvalidRequest(format!(
                "cannot allocate {kind:?}"
            )));
        }
        let id = {
            // meta → shard → wal lock order: read_raw below probes a
            // cache shard and the WAL index while we hold the meta lock.
            let mut state = self.meta.lock();
            if state.free_head != NIL {
                let id = state.free_head;
                // Next pointer lives in the freed page's payload.
                let data = self.read_raw(id)?;
                let mut c = PageReader::new(&data);
                let k = c.get_u8()?;
                if k != PageKind::Free.as_u8() {
                    return Err(PagerError::Corrupt(format!(
                        "free-list page {id} has kind {k}"
                    )));
                }
                c.skip(4)?; // stored payload length, unused here
                state.free_head = c.get_u64()?;
                state.meta_dirty = true;
                Some(id)
            } else {
                None
            }
        };
        let id = match id {
            Some(id) => id,
            None => {
                let id = self.store.num_pages();
                self.store.grow(id + 1)?;
                id
            }
        };
        self.write(id, kind, &[])?;
        Ok(id)
    }

    /// Return a page to the free list.
    pub fn free(&self, id: PageId) -> Result<()> {
        if id == 0 {
            return Err(PagerError::InvalidRequest(
                "cannot free the meta page".into(),
            ));
        }
        let head = {
            // meta → shard: drop the page from its cache shard while the
            // free-list head is pinned, then release both before the log
            // append. free() is a mutating op — single-writer by contract
            // — so the head cannot move between this block and the
            // re-lock below.
            let state = self.meta.lock();
            self.shard(id)?.lock().remove(id);
            state.free_head
        };
        let mut page = vec![0u8; self.page_size].into_boxed_slice();
        {
            let mut c = PageCodec::new(&mut page);
            c.put_u8(PageKind::Free.as_u8())?;
            c.put_u32(8)?;
            c.put_u64(head)?;
        }
        // The log append lands before the in-memory head moves, so a
        // failed append leaves the free list pointing at the old chain.
        self.log_page(id, page)?;
        let mut state = self.meta.lock();
        state.free_head = id;
        state.meta_dirty = true;
        Ok(())
    }

    /// Append a full-page redo frame for `id` to the write-ahead log and
    /// install the image as a *clean* cache entry. This is the only
    /// mutation path to page data between checkpoints — the store itself
    /// is written exclusively by [`PageFile::flush`] and replay.
    fn log_page(&self, id: PageId, page: Box<[u8]>) -> Result<()> {
        let page: Arc<[u8]> = Arc::from(page);
        // Stage the append under the WAL lock, run the log I/O after
        // releasing it (mutations are single-writer by contract, so the
        // append offset cannot move in between), publish on success. A
        // failed write never advances `len`, so the retry overwrites its
        // own garbage at the same offset.
        let (off, frame_off, buf) = {
            let wal = self.wal.lock();
            let frame = encode_page_frame(id, &page, wal.epoch)?;
            if wal.len == 0 {
                // First append of a generation carries the log header.
                let mut b = encode_header(self.page_size, wal.epoch)?;
                let frame_off = b.len() as u64;
                b.extend_from_slice(&frame);
                (0u64, frame_off, b)
            } else {
                (wal.len, wal.len, frame)
            }
        };
        self.stats.record_physical_write();
        self.log.write_log_at(off, &buf)?;
        {
            let mut wal = self.wal.lock();
            wal.len = off + buf.len() as u64;
            wal.index.insert(id, frame_off);
        }
        self.wal_stats.record_frame_appended();
        let mut cache = self.shard(id)?.lock();
        if cache.insert(id, page) {
            self.stats.record_cache_evictions(1);
        }
        Ok(())
    }

    /// Cache-through read of the raw page bytes. The shard lock is held
    /// across probe → WAL-index probe → log/store read → insert so that
    /// accounting stays exact under concurrency: every miss is exactly
    /// one physical read. Pages written since the last checkpoint are
    /// served from the write-ahead log; everything else from the store.
    fn read_raw(&self, id: PageId) -> Result<Arc<[u8]>> {
        let mut cache = self.shard(id)?.lock();
        if let Some(data) = cache.get(id) {
            self.stats.record_cache_hit();
            return Ok(data);
        }
        self.stats.record_cache_miss();
        let mut buf = vec![0u8; self.page_size].into_boxed_slice();
        self.stats.record_physical_read();
        let frame_off = self.wal.lock().index.get(&id).copied();
        match frame_off {
            Some(off) => {
                // srlint: allow(lock-io) -- the sanctioned read-through, WAL arm: releasing the shard between probe and log read would double-fetch concurrent misses and break misses == physical_reads
                let res = self.log.read_log_at(off + FRAME_HEADER as u64, &mut buf);
                if let Err(e) = res {
                    if self.wal.lock().index.get(&id).copied() == Some(off) {
                        return Err(e);
                    }
                    // A checkpoint truncated that log generation between
                    // the index probe and the read; its images are in the
                    // store now.
                    // srlint: allow(lock-io) -- read-through fallback after a checkpoint race, under the same shard guard for the same exactness reason
                    self.store.read_page(id, &mut buf)?;
                }
            }
            None => {
                // srlint: allow(lock-io) -- the sanctioned read-through, store arm: releasing the shard between probe and store read would double-fetch concurrent misses and break misses == physical_reads
                self.store.read_page(id, &mut buf)?;
            }
        }
        let buf: Arc<[u8]> = Arc::from(buf);
        if cache.insert(id, Arc::clone(&buf)) {
            self.stats.record_cache_evictions(1);
        }
        Ok(buf)
    }

    /// Read the payload of page `id`, checking that its kind matches.
    ///
    /// The returned [`PageBuf`] is a zero-copy view into the shared page
    /// image the buffer pool holds: a cache hit costs an `Arc` clone, not
    /// a page-sized memcpy, and the view stays valid even if the page is
    /// evicted or rewritten after this call returns (later writes install
    /// a fresh image; they never mutate a published one).
    pub fn read(&self, id: PageId, expected: PageKind) -> Result<PageBuf> {
        self.stats.record_logical_read(expected);
        let data = self.read_raw(id)?;
        let mut c = PageReader::new(&data);
        let kind = c.get_u8()?;
        if kind != expected.as_u8() {
            return Err(PagerError::KindMismatch {
                id,
                found: kind,
                expected: expected.as_u8(),
            });
        }
        let len = usize::try_from(c.get_u32()?)
            .map_err(|_| PagerError::Corrupt("payload length does not fit usize".into()))?;
        if len > self.capacity() {
            return Err(PagerError::Corrupt(format!(
                "page {id} claims payload of {len} bytes"
            )));
        }
        let start = c.pos();
        let end = start.checked_add(len).filter(|&e| e <= data.len()).ok_or(
            PagerError::CodecOverrun {
                pos: start,
                want: len,
                len: data.len(),
            },
        )?;
        Ok(PageBuf { data, start, end })
    }

    /// Write `payload` to page `id` with the given kind. The image goes
    /// to the write-ahead log only; the store is updated at the next
    /// [`PageFile::flush`] (checkpoint).
    pub fn write(&self, id: PageId, kind: PageKind, payload: &[u8]) -> Result<()> {
        if payload.len() > self.capacity() {
            return Err(PagerError::PayloadTooLarge {
                len: payload.len(),
                capacity: self.capacity(),
            });
        }
        let len = u32::try_from(payload.len()).map_err(|_| PagerError::PayloadTooLarge {
            len: payload.len(),
            capacity: self.capacity(),
        })?;
        let mut page = vec![0u8; self.page_size].into_boxed_slice();
        {
            let mut c = PageCodec::new(&mut page);
            c.put_u8(kind.as_u8())?;
            c.put_u32(len)?;
            c.put_bytes(payload)?;
        }
        self.stats.record_logical_write(kind);
        self.log_page(id, page)
    }

    /// Serialize the meta page from the guarded state.
    fn encode_meta_page(page_size: usize, state: &MetaState) -> Result<Vec<u8>> {
        let ps = u32::try_from(page_size)
            .map_err(|_| PagerError::Corrupt("page size does not fit u32".into()))?;
        let meta_len = u32::try_from(state.user_meta.len())
            .map_err(|_| PagerError::Corrupt("user metadata length does not fit u32".into()))?;
        let mut page = vec![0u8; page_size];
        let mut c = PageCodec::new(&mut page);
        c.put_u32(MAGIC)?;
        c.put_u32(VERSION)?;
        c.put_u32(ps)?;
        c.put_u64(state.free_head)?;
        c.put_u32(meta_len)?;
        c.put_bytes(&state.user_meta)?;
        Ok(page)
    }

    /// Commit and checkpoint: append a commit marker sealing every frame
    /// logged since the last checkpoint, fsync the log (the durability
    /// barrier), copy the latest image of each logged page into the
    /// store, fsync the store, and truncate the log. After a successful
    /// flush the store alone holds the full committed state; after a
    /// crash anywhere inside it, replay-on-open restores exactly the
    /// state of the last completed commit.
    pub fn flush(&self) -> Result<()> {
        // Stage a dirty meta page as a logged frame like any other page.
        let meta_page = {
            let state = self.meta.lock();
            if state.meta_dirty {
                Some(Self::encode_meta_page(self.page_size, &state)?)
            } else {
                None
            }
        };
        if let Some(page) = meta_page {
            self.log_page(0, page.into_boxed_slice())?;
            // The image is staged in the log; whichever flush next seals
            // a commit marker persists it, so the dirty bit can drop now.
            self.meta.lock().meta_dirty = false;
        }

        // Nothing logged since the last checkpoint → nothing to commit.
        let (epoch, seq, commit_off, mut index) = {
            let mut wal = self.wal.lock();
            if wal.index.is_empty() {
                return Ok(());
            }
            wal.commit_seq += 1;
            let index: Vec<(PageId, u64)> = wal.index.iter().map(|(&id, &off)| (id, off)).collect();
            (wal.epoch, wal.commit_seq, wal.len, index)
        };

        // Commit marker + log fsync: the durability barrier.
        let frame = encode_commit_frame(seq, epoch)?;
        self.stats.record_physical_write();
        self.log.write_log_at(commit_off, &frame)?;
        {
            let mut wal = self.wal.lock();
            wal.len = commit_off + frame.len() as u64;
        }
        self.log.sync_log()?;
        self.wal_stats.record_commit();

        // Checkpoint: copy each committed image into the store, in page
        // order for locality, then make the store durable. These log
        // reads are recovery bookkeeping, not page traffic, so they are
        // not counted in IoStats (misses == physical_reads stays exact).
        index.sort_unstable_by_key(|&(id, _)| id);
        let mut buf = vec![0u8; self.page_size];
        for (id, off) in index {
            self.log.read_log_at(off + FRAME_HEADER as u64, &mut buf)?;
            self.stats.record_physical_write();
            self.store.write_page(id, &buf)?;
        }
        self.store.sync()?;

        // Start a new log generation. The in-memory state resets before
        // the truncate I/O: if the truncate fails (or a power cut undoes
        // it), the bumped epoch makes every stale frame fail its
        // checksum at the next replay scan.
        {
            let mut wal = self.wal.lock();
            wal.index.clear();
            wal.len = 0;
            wal.epoch += 1;
        }
        self.log.truncate_log(0)?;
        self.log.sync_log()?;
        self.wal_stats.record_truncation();
        Ok(())
    }
}

impl Drop for PageFile {
    fn drop(&mut self) {
        // Best-effort durability; errors on drop have nowhere to go.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_memory() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let id = pf.allocate(PageKind::Leaf).unwrap();
        pf.write(id, PageKind::Leaf, b"payload").unwrap();
        assert_eq!(pf.read(id, PageKind::Leaf).unwrap(), b"payload");
    }

    #[test]
    fn kind_mismatch_detected() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let id = pf.allocate(PageKind::Leaf).unwrap();
        assert!(matches!(
            pf.read(id, PageKind::Node),
            Err(PagerError::KindMismatch { .. })
        ));
    }

    #[test]
    fn payload_too_large_rejected() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let id = pf.allocate(PageKind::Node).unwrap();
        let big = vec![0u8; pf.capacity() + 1];
        assert!(matches!(
            pf.write(id, PageKind::Node, &big),
            Err(PagerError::PayloadTooLarge { .. })
        ));
        // exactly at capacity is fine
        let fit = vec![7u8; pf.capacity()];
        pf.write(id, PageKind::Node, &fit).unwrap();
        assert_eq!(pf.read(id, PageKind::Node).unwrap(), fit);
    }

    #[test]
    fn free_list_reuses_pages() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let a = pf.allocate(PageKind::Leaf).unwrap();
        let b = pf.allocate(PageKind::Leaf).unwrap();
        let before = pf.num_pages();
        pf.free(a).unwrap();
        pf.free(b).unwrap();
        // LIFO reuse
        assert_eq!(pf.allocate(PageKind::Node).unwrap(), b);
        assert_eq!(pf.allocate(PageKind::Node).unwrap(), a);
        assert_eq!(pf.num_pages(), before, "no growth while free pages exist");
    }

    #[test]
    fn stats_count_logical_and_physical() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let id = pf.allocate(PageKind::Leaf).unwrap();
        pf.write(id, PageKind::Leaf, b"x").unwrap();
        pf.reset_stats();

        // cached: two logical reads, zero physical
        let _ = pf.read(id, PageKind::Leaf).unwrap();
        let _ = pf.read(id, PageKind::Leaf).unwrap();
        let s = pf.stats();
        assert_eq!(s.logical_reads(PageKind::Leaf), 2);
        assert_eq!(s.physical_reads(), 0);

        // disable the cache: now every logical read is physical
        pf.set_cache_capacity(0).unwrap();
        pf.reset_stats();
        let _ = pf.read(id, PageKind::Leaf).unwrap();
        let s = pf.stats();
        assert_eq!(s.logical_reads(PageKind::Leaf), 1);
        assert_eq!(s.physical_reads(), 1);
    }

    #[test]
    fn cold_cache_write_goes_straight_to_log() {
        let pf = PageFile::create_in_memory(512).unwrap();
        pf.set_cache_capacity(0).unwrap();
        let id = pf.allocate(PageKind::Node).unwrap();
        pf.reset_stats();
        pf.write(id, PageKind::Node, b"data").unwrap();
        assert_eq!(pf.stats().physical_writes(), 1, "one WAL append");
        assert_eq!(pf.read(id, PageKind::Node).unwrap(), b"data");
    }

    #[test]
    fn reads_between_checkpoints_come_from_the_log() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let id = pf.allocate(PageKind::Leaf).unwrap();
        pf.flush().unwrap();
        pf.write(id, PageKind::Leaf, b"logged-only").unwrap();
        // Cold cache: the read must be served from the WAL, because the
        // store still holds the pre-write image.
        pf.set_cache_capacity(0).unwrap();
        assert_eq!(pf.read(id, PageKind::Leaf).unwrap(), b"logged-only");
        let ws = pf.wal_stats();
        assert!(ws.frames_appended > 0);
        assert!(ws.wal_bytes > 0, "frames pending until the next flush");
    }

    #[test]
    fn flush_checkpoints_and_truncates_the_log() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let id = pf.allocate(PageKind::Leaf).unwrap();
        pf.write(id, PageKind::Leaf, b"committed").unwrap();
        pf.flush().unwrap();
        let ws = pf.wal_stats();
        assert!(ws.commits >= 1);
        assert!(ws.truncations >= 1);
        assert_eq!(ws.wal_bytes, 0, "flush must truncate the log");
        // The store now serves the page without the log.
        pf.set_cache_capacity(0).unwrap();
        assert_eq!(pf.read(id, PageKind::Leaf).unwrap(), b"committed");
    }

    #[test]
    fn empty_flush_is_a_no_op() {
        let pf = PageFile::create_in_memory(512).unwrap();
        pf.flush().unwrap();
        let before = pf.wal_stats();
        pf.flush().unwrap();
        let after = pf.wal_stats();
        assert_eq!(before.commits, after.commits, "nothing to commit");
        assert_eq!(before.truncations, after.truncations);
    }

    #[test]
    fn user_meta_roundtrip_and_limit() {
        let pf = PageFile::create_in_memory(512).unwrap();
        pf.set_user_meta(b"root=42").unwrap();
        assert_eq!(pf.user_meta(), b"root=42");
        let too_big = vec![0u8; pf.user_meta_capacity() + 1];
        assert!(pf.set_user_meta(&too_big).is_err());
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = std::env::temp_dir().join(format!("sr-pagefile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persist.pages");
        let (a, b);
        {
            let pf = PageFile::create_with_page_size(&path, 512).unwrap();
            a = pf.allocate(PageKind::Node).unwrap();
            b = pf.allocate(PageKind::Leaf).unwrap();
            pf.write(a, PageKind::Node, b"node-data").unwrap();
            pf.write(b, PageKind::Leaf, b"leaf-data").unwrap();
            pf.set_user_meta(b"meta!").unwrap();
            pf.flush().unwrap();
        }
        {
            let pf = PageFile::open(&path).unwrap();
            assert_eq!(pf.page_size(), 512);
            assert_eq!(pf.user_meta(), b"meta!");
            assert_eq!(pf.read(a, PageKind::Node).unwrap(), b"node-data");
            assert_eq!(pf.read(b, PageKind::Leaf).unwrap(), b"leaf-data");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(wal_file_path(&path)).ok();
    }

    #[test]
    fn unflushed_writes_survive_reopen_via_drop_flush() {
        let dir = std::env::temp_dir().join(format!("sr-pagefile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dropflush.pages");
        let id;
        {
            let pf = PageFile::create_with_page_size(&path, 512).unwrap();
            id = pf.allocate(PageKind::Leaf).unwrap();
            pf.write(id, PageKind::Leaf, b"dropped").unwrap();
            // No explicit flush: Drop checkpoints.
        }
        {
            let pf = PageFile::open(&path).unwrap();
            assert_eq!(pf.read(id, PageKind::Leaf).unwrap(), b"dropped");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(wal_file_path(&path)).ok();
    }

    #[test]
    fn free_list_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("sr-pagefile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("freelist.pages");
        let freed;
        {
            let pf = PageFile::create_with_page_size(&path, 512).unwrap();
            let _keep = pf.allocate(PageKind::Leaf).unwrap();
            freed = pf.allocate(PageKind::Leaf).unwrap();
            pf.free(freed).unwrap();
            pf.flush().unwrap();
        }
        {
            let pf = PageFile::open(&path).unwrap();
            assert_eq!(pf.allocate(PageKind::Leaf).unwrap(), freed);
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(wal_file_path(&path)).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("sr-pagefile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.pages");
        std::fs::write(&path, vec![0x55u8; 1024]).unwrap();
        assert!(matches!(PageFile::open(&path), Err(PagerError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(wal_file_path(&path)).ok();
    }

    #[test]
    fn cache_counters_track_hits_misses_and_evictions() {
        // One page of pool per shard, two pages of data per shard: a sweep
        // over all pages thrashes every shard deterministically.
        let shards = PageFile::CACHE_SHARDS;
        let pf = PageFile::create_in_memory(512).unwrap();
        pf.set_cache_capacity(shards).unwrap();
        let ids: Vec<_> = (0..2 * shards)
            .map(|i| {
                let id = pf.allocate(PageKind::Leaf).unwrap();
                pf.write(id, PageKind::Leaf, &[i as u8; 8]).unwrap();
                id
            })
            .collect();
        pf.reset_stats();

        // Sweep all pages: each shard's single slot always holds the
        // other page of its pair, so every read misses, and because the
        // writes above left each slot full, every miss also evicts.
        for &id in &ids {
            let _ = pf.read(id, PageKind::Leaf).unwrap();
        }
        let s = pf.stats();
        assert_eq!(s.cache_misses(), 2 * shards as u64);
        assert_eq!(
            s.cache_misses(),
            s.physical_reads(),
            "every miss is exactly one physical read"
        );
        assert_eq!(
            s.cache_evictions(),
            2 * shards as u64,
            "full pool: one eviction per miss"
        );

        // Re-read the second half (the resident page of each shard): pure
        // hits.
        pf.reset_stats();
        for &id in &ids[shards..] {
            let _ = pf.read(id, PageKind::Leaf).unwrap();
        }
        let s = pf.stats();
        assert_eq!(s.cache_hits(), shards as u64);
        assert_eq!(s.cache_misses(), 0);
        assert_eq!(s.cache_hit_rate(), Some(1.0));

        // Shrinking the pool counts its spills as evictions.
        pf.reset_stats();
        pf.set_cache_capacity(0).unwrap();
        assert_eq!(pf.stats().cache_evictions(), shards as u64);
        assert_eq!(pf.cache_capacity(), 0);
    }

    #[test]
    fn concurrent_reads_keep_accounting_exact() {
        let pf = PageFile::create_in_memory(512).unwrap();
        let ids: Vec<_> = (0..32u8)
            .map(|i| {
                let id = pf.allocate(PageKind::Leaf).unwrap();
                pf.write(id, PageKind::Leaf, &[i; 8]).unwrap();
                id
            })
            .collect();
        pf.flush().unwrap();
        // Small pool so concurrent sweeps force misses and evictions.
        pf.set_cache_capacity(8).unwrap();
        pf.reset_stats();

        const THREADS: u64 = 4;
        const ROUNDS: u64 = 50;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        for (i, &id) in ids.iter().enumerate() {
                            let data = pf.read(id, PageKind::Leaf).unwrap();
                            assert_eq!(data, vec![i as u8; 8], "torn or misrouted page");
                        }
                    }
                });
            }
        });

        let s = pf.stats();
        assert_eq!(
            s.logical_reads(PageKind::Leaf),
            THREADS * ROUNDS * ids.len() as u64,
            "no logical read lost"
        );
        assert_eq!(
            s.cache_hits() + s.cache_misses(),
            s.logical_reads(PageKind::Leaf),
            "every probe is exactly one hit or one miss"
        );
        assert_eq!(
            s.cache_misses(),
            s.physical_reads(),
            "every miss is exactly one physical read, even under contention"
        );
    }

    #[test]
    fn tiny_pool_stays_readable_under_spills() {
        let pf = PageFile::create_in_memory(512).unwrap();
        pf.set_cache_capacity(2).unwrap();
        let ids: Vec<_> = (0..8)
            .map(|i| {
                let id = pf.allocate(PageKind::Leaf).unwrap();
                pf.write(id, PageKind::Leaf, &[i as u8; 16]).unwrap();
                id
            })
            .collect();
        // Everything must still be readable even though only 2 pages fit
        // in the pool — evicted images are always recoverable from the
        // log (or the store after a checkpoint).
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pf.read(id, PageKind::Leaf).unwrap(), vec![i as u8; 16]);
        }
        pf.flush().unwrap();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pf.read(id, PageKind::Leaf).unwrap(), vec![i as u8; 16]);
        }
    }
}
