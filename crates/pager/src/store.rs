//! Raw page storage backends: an in-memory store for tests and benchmarks
//! that must not measure host-disk noise, and a real file-backed store.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::RwLock;

use crate::error::{PagerError, Result};
use crate::page::PageId;

/// A flat array of fixed-size pages. Implementations are internally
/// synchronized so the buffer-pool layer can read through `&self`.
pub trait PageStore: Send + Sync {
    /// Size of every page in bytes.
    fn page_size(&self) -> usize;

    /// Number of pages currently allocated in the store.
    fn num_pages(&self) -> u64;

    /// Read page `id` into `buf` (which must be exactly `page_size` long).
    #[doc = "srlint: io"]
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Overwrite page `id` with `data` (exactly `page_size` long).
    #[doc = "srlint: io"]
    fn write_page(&self, id: PageId, data: &[u8]) -> Result<()>;

    /// Extend the store to hold `new_num_pages` pages (no-op if already
    /// that large). New pages read as zeroes.
    #[doc = "srlint: io"]
    fn grow(&self, new_num_pages: u64) -> Result<()>;

    /// Flush to durable storage where applicable.
    #[doc = "srlint: io"]
    fn sync(&self) -> Result<()>;
}

/// An in-memory page store. Used by tests and by query benchmarks, where
/// "disk reads" are counted logically and real disk latency would only add
/// noise.
///
/// Cloning shares the underlying pages: crash-recovery tests keep a
/// clone, "lose power" on the [`crate::PageFile`], and reopen a fresh
/// pager over the very same surviving bytes.
// srlint: send-sync -- the shared page bytes sit behind an RwLock; clones share them by design so crash tests can reopen surviving bytes
#[derive(Clone)]
pub struct MemPageStore {
    page_size: usize, // srlint: guarded-by(owner)
    pages: Arc<RwLock<Vec<u8>>>,
}

impl MemPageStore {
    /// Create an empty store with the given page size.
    pub fn new(page_size: usize) -> Self {
        // srlint: allow(assert) -- page size is construction-time
        // configuration chosen by the caller, never decoded data.
        assert!(page_size >= 64, "page size {page_size} is unusably small");
        MemPageStore {
            page_size,
            pages: Arc::new(RwLock::new(Vec::new())),
        }
    }

    /// Byte range of page `id`, or `None` if it lies past `len` (or the
    /// offset arithmetic would overflow).
    fn page_range(&self, id: PageId, len: usize) -> Option<std::ops::Range<usize>> {
        let off = usize::try_from(id).ok()?.checked_mul(self.page_size)?;
        let end = off.checked_add(self.page_size)?;
        (end <= len).then_some(off..end)
    }
}

impl PageStore for MemPageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        (self.pages.read().len() / self.page_size) as u64
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        let pages = self.pages.read();
        match self.page_range(id, pages.len()).and_then(|r| pages.get(r)) {
            Some(src) => {
                buf.copy_from_slice(src);
                Ok(())
            }
            None => Err(PagerError::PageOutOfRange {
                id,
                num_pages: (pages.len() / self.page_size) as u64,
            }),
        }
    }

    fn write_page(&self, id: PageId, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), self.page_size);
        let mut pages = self.pages.write();
        let len = pages.len();
        match self.page_range(id, len).and_then(|r| pages.get_mut(r)) {
            Some(dst) => {
                dst.copy_from_slice(data);
                Ok(())
            }
            None => Err(PagerError::PageOutOfRange {
                id,
                num_pages: (len / self.page_size) as u64,
            }),
        }
    }

    fn grow(&self, new_num_pages: u64) -> Result<()> {
        let mut pages = self.pages.write();
        let want = new_num_pages as usize * self.page_size;
        if want > pages.len() {
            pages.resize(want, 0);
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// A file-backed page store using positioned reads/writes, so concurrent
/// readers need no seek coordination.
// srlint: send-sync -- positioned I/O never mutates the File handle, which is fixed at construction; the page count advances through an atomic
pub struct FilePageStore {
    page_size: usize, // srlint: guarded-by(owner)
    file: File,       // srlint: guarded-by(owner)
    num_pages: AtomicU64,
}

impl FilePageStore {
    /// Create (truncating) a page file at `path`.
    pub fn create(path: &Path, page_size: usize) -> Result<Self> {
        // srlint: allow(assert) -- page size is construction-time
        // configuration chosen by the caller, never decoded data.
        assert!(page_size >= 64, "page size {page_size} is unusably small");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePageStore {
            page_size,
            file,
            num_pages: AtomicU64::new(0),
        })
    }

    /// Open an existing page file whose page size is already known (the
    /// `PageFile` layer records it in the metadata page and validates).
    pub fn open(path: &Path, page_size: usize) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(PagerError::Corrupt(format!(
                "file length {len} is not a multiple of page size {page_size}"
            )));
        }
        Ok(FilePageStore {
            page_size,
            file,
            num_pages: AtomicU64::new(len / page_size as u64),
        })
    }
}

impl PageStore for FilePageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        // srlint: ordering -- acquire pairs with the release store in grow(): a loaded count guarantees set_len has already extended the file that far
        self.num_pages.load(Ordering::Acquire)
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        debug_assert_eq!(buf.len(), self.page_size);
        if id >= self.num_pages() {
            return Err(PagerError::PageOutOfRange {
                id,
                num_pages: self.num_pages(),
            });
        }
        self.file.read_exact_at(buf, id * self.page_size as u64)?;
        Ok(())
    }

    fn write_page(&self, id: PageId, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        debug_assert_eq!(data.len(), self.page_size);
        if id >= self.num_pages() {
            return Err(PagerError::PageOutOfRange {
                id,
                num_pages: self.num_pages(),
            });
        }
        self.file.write_all_at(data, id * self.page_size as u64)?;
        Ok(())
    }

    fn grow(&self, new_num_pages: u64) -> Result<()> {
        let cur = self.num_pages();
        if new_num_pages > cur {
            self.file.set_len(new_num_pages * self.page_size as u64)?;
            // srlint: ordering -- release publishes the count only after set_len succeeds; pairs with the acquire load in num_pages()
            self.num_pages.store(new_num_pages, Ordering::Release);
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn PageStore) {
        assert_eq!(store.num_pages(), 0);
        store.grow(3).unwrap();
        assert_eq!(store.num_pages(), 3);

        let ps = store.page_size();
        let mut page = vec![0xABu8; ps];
        page[0] = 1;
        store.write_page(1, &page).unwrap();

        let mut out = vec![0u8; ps];
        store.read_page(1, &mut out).unwrap();
        assert_eq!(out, page);

        // untouched pages read as zero
        store.read_page(2, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));

        // out-of-range access is an error, not UB
        assert!(matches!(
            store.read_page(3, &mut out),
            Err(PagerError::PageOutOfRange { .. })
        ));
        assert!(matches!(
            store.write_page(9, &page),
            Err(PagerError::PageOutOfRange { .. })
        ));

        // grow is monotone
        store.grow(2).unwrap();
        assert_eq!(store.num_pages(), 3);
        store.sync().unwrap();
    }

    #[test]
    fn mem_store_basics() {
        exercise(&MemPageStore::new(256));
    }

    #[test]
    fn mem_store_clones_share_pages() {
        let a = MemPageStore::new(128);
        let b = a.clone();
        a.grow(2).unwrap();
        a.write_page(1, &[3u8; 128]).unwrap();
        assert_eq!(b.num_pages(), 2);
        let mut buf = vec![0u8; 128];
        b.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 3));
    }

    #[test]
    fn file_store_basics() {
        let dir = std::env::temp_dir().join(format!("sr-pager-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("basics.pages");
        exercise(&FilePageStore::create(&path, 256).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("sr-pager-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.pages");
        {
            let s = FilePageStore::create(&path, 128).unwrap();
            s.grow(2).unwrap();
            s.write_page(1, &[7u8; 128]).unwrap();
            s.sync().unwrap();
        }
        {
            let s = FilePageStore::open(&path, 128).unwrap();
            assert_eq!(s.num_pages(), 2);
            let mut buf = vec![0u8; 128];
            s.read_page(1, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 7));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_rejects_misaligned_length() {
        let dir = std::env::temp_dir().join(format!("sr-pager-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("misaligned.pages");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(matches!(
            FilePageStore::open(&path, 128),
            Err(PagerError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
