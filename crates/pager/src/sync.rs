//! Minimal poison-ignoring wrappers over `std::sync` locks.
//!
//! The pager never relies on poisoning for correctness — a panic while a
//! lock is held can only happen on a logic bug, and the recovery story
//! for that is the on-disk checks in `PageFile::open`, not lock state.
//! These wrappers therefore expose the `parking_lot`-style API (`lock()`
//! returning the guard directly) while building only on the standard
//! library, keeping the crate dependency-free.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7; // must not panic
        assert_eq!(*m.lock(), 7);
    }
}
