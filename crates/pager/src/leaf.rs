//! The shared columnar (structure-of-arrays) leaf payload format.
//!
//! Every index crate in the workspace stores the same three things per
//! leaf entry: `dim` coordinates (widened to `f64`, paper Table 1), a
//! `u64` data id, and a zero-filled reserved area padding the entry to
//! the paper's `data_area` bytes. Since PR 8 the entries are laid out
//! **dimension-major** so the query scan can score a whole leaf straight
//! from the page buffer with the columnar kernels in `sr-geometry`:
//!
//! ```text
//! offset 0                  u16  level (must be 0)
//! offset 2                  u16  n — entry count
//! offset 4                  n * f64  dimension-0 values, one per entry
//! offset 4 +     n*8        n * f64  dimension-1 values
//! ...
//! offset 4 + dim*n*8        n * u64  data ids
//! offset 4 + (dim+1)*n*8    n * (data_area - 8) zero padding
//! ```
//!
//! The total payload size equals the old row-major layout's —
//! `4 + n * (dim*8 + data_area)` — so fanout and the paper's page-size
//! arithmetic are unchanged; only the order of the bytes moved. All
//! values are little-endian. There is no alignment requirement: readers
//! decode through `[u8; 8]` lanes (`f64::from_le_bytes`), never by
//! reinterpreting the buffer, which is also what keeps the zero-copy
//! path compatible with `forbid(unsafe_code)`.
//!
//! This module is inside the srlint L2 audit scope: no slice indexing
//! and no unhatched `as` casts, so a corrupted count can only surface as
//! a typed error, never as a panic.

use crate::error::{PagerError, Result};
use crate::page::PageCodec;

/// Bytes of the `(level, count)` leaf header — the same `NODE_HEADER`
/// every index crate uses.
pub const LEAF_HEADER: usize = 4;

/// A parsed, zero-copy view of a columnar leaf payload.
///
/// Borrows the payload (typically a [`crate::PageBuf`] served straight
/// from the buffer pool) and exposes the coordinate block and data-id
/// column without materialising per-entry points.
pub struct LeafColumns<'a> {
    payload: &'a [u8],
    n: usize,
    dim: usize,
}

impl<'a> LeafColumns<'a> {
    /// Parse a leaf payload, validating the header and that the payload
    /// covers the coordinate and data columns for the claimed count.
    pub fn parse(payload: &'a [u8], dim: usize) -> Result<Self> {
        let header = payload
            .get(..LEAF_HEADER)
            .ok_or_else(|| PagerError::Corrupt("leaf payload shorter than its header".into()))?;
        let mut c = ReadHeader::new(header);
        let level = c.get_u16()?;
        if level != 0 {
            return Err(PagerError::Corrupt(format!(
                "leaf payload claims level {level}"
            )));
        }
        let n = usize::from(c.get_u16()?);
        let need = n
            .checked_mul(dim.checked_add(1).ok_or_else(overflow)?)
            .and_then(|v| v.checked_mul(8))
            .and_then(|v| v.checked_add(LEAF_HEADER))
            .ok_or_else(overflow)?;
        if payload.len() < need {
            return Err(PagerError::Corrupt(format!(
                "truncated columnar leaf: {} bytes for {n} entries of {dim} dims",
                payload.len()
            )));
        }
        Ok(LeafColumns { payload, n, dim })
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the leaf is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality the view was parsed with.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The dimension-major coordinate block: `dim * n` f64-LE values,
    /// ready for the columnar distance kernels.
    #[inline]
    pub fn coords(&self) -> &'a [u8] {
        self.payload
            .get(LEAF_HEADER..LEAF_HEADER + self.dim * self.n * 8)
            .unwrap_or(&[])
    }

    /// The data ids, in entry order.
    pub fn data_ids(&self) -> impl Iterator<Item = u64> + 'a {
        let start = LEAF_HEADER + self.dim * self.n * 8;
        let col = self.payload.get(start..start + self.n * 8).unwrap_or(&[]);
        let (lanes, _tail) = col.as_chunks::<8>();
        lanes.iter().map(|lane| u64::from_le_bytes(*lane))
    }

    /// Materialise entry `i`'s coordinates (narrowed back to `f32`) into
    /// `out` — the row-major view the insert/delete/verify paths and the
    /// scalar scan mode still work with.
    pub fn point_into(&self, i: usize, out: &mut Vec<f32>) -> Result<()> {
        if i >= self.n {
            return Err(PagerError::Corrupt(format!(
                "leaf entry {i} out of range ({} entries)",
                self.n
            )));
        }
        out.clear();
        out.reserve(self.dim);
        for d in 0..self.dim {
            let off = LEAF_HEADER + (d * self.n + i) * 8;
            let lane = self
                .payload
                .get(off..)
                .and_then(|s| s.first_chunk::<8>())
                .ok_or_else(|| PagerError::Corrupt("leaf coordinate out of range".into()))?;
            // srlint: allow(cast) -- on-disk f64 coordinates narrow back
            // to the in-memory f32 format by design (every stored value
            // originated as an f32, so this is lossless).
            out.push(f64::from_le_bytes(*lane) as f32);
        }
        Ok(())
    }
}

fn overflow() -> PagerError {
    PagerError::Corrupt("columnar leaf size overflows usize".into())
}

/// Encode a leaf payload in the columnar layout: `(level=0, n)` header,
/// then the dimension-major coordinate columns, the data-id column, and
/// the zero-filled reserved area (`n * (data_area - 8)` bytes).
///
/// `entries` pairs each entry's coordinates with its data id; every
/// coordinate slice must have length `dim`.
pub fn put_leaf_columns(
    c: &mut PageCodec<'_>,
    dim: usize,
    data_area: usize,
    entries: &[(&[f32], u64)],
) -> Result<()> {
    let n = u16::try_from(entries.len())
        .map_err(|_| PagerError::Corrupt("leaf entry count overflows u16".into()))?;
    c.put_u16(0)?;
    c.put_u16(n)?;
    for d in 0..dim {
        for (coords, _) in entries {
            let v = coords.get(d).copied().ok_or_else(|| {
                PagerError::Corrupt(format!(
                    "leaf entry has {} coords, index expects {dim}",
                    coords.len()
                ))
            })?;
            c.put_f64(f64::from(v))?;
        }
    }
    for (_, data) in entries {
        c.put_u64(*data)?;
    }
    let reserved = data_area.checked_sub(8).ok_or_else(|| {
        PagerError::Corrupt(format!("data_area {data_area} smaller than the data id"))
    })?;
    c.put_padding(entries.len().checked_mul(reserved).ok_or_else(overflow)?)?;
    Ok(())
}

/// Minimal u16 reader for the leaf header, kept local so the hot-path
/// view does not need a full [`crate::PageReader`].
struct ReadHeader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ReadHeader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ReadHeader { buf, pos: 0 }
    }

    fn get_u16(&mut self) -> Result<u16> {
        let lane = self
            .buf
            .get(self.pos..)
            .and_then(|s| s.first_chunk::<2>())
            .ok_or(PagerError::CodecOverrun {
                pos: self.pos,
                want: 2,
                len: self.buf.len(),
            })?;
        self.pos += 2;
        Ok(u16::from_le_bytes(*lane))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(dim: usize, data_area: usize, entries: &[(Vec<f32>, u64)]) -> Vec<u8> {
        let mut buf = vec![0u8; 4 + entries.len() * (dim * 8 + data_area)];
        let borrowed: Vec<(&[f32], u64)> =
            entries.iter().map(|(c, d)| (c.as_slice(), *d)).collect();
        let mut c = PageCodec::new(&mut buf);
        put_leaf_columns(&mut c, dim, data_area, &borrowed).unwrap();
        assert_eq!(c.pos(), buf.len(), "payload size arithmetic must agree");
        buf
    }

    #[test]
    fn roundtrip_columnar() {
        let entries = vec![(vec![1.0f32, 2.0, 3.0], 10u64), (vec![-4.5, 0.25, 6.0], 11)];
        let payload = encode(3, 16, &entries);
        let cols = LeafColumns::parse(&payload, 3).unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols.data_ids().collect::<Vec<_>>(), vec![10, 11]);
        let mut p = Vec::new();
        for (i, (coords, _)) in entries.iter().enumerate() {
            cols.point_into(i, &mut p).unwrap();
            assert_eq!(&p, coords);
        }
    }

    #[test]
    fn coords_block_is_dimension_major() {
        let entries = vec![(vec![1.0f32, 3.0], 0u64), (vec![2.0, 4.0], 1)];
        let payload = encode(2, 8, &entries);
        let cols = LeafColumns::parse(&payload, 2).unwrap();
        let block = cols.coords();
        let vals: Vec<f64> = block
            .as_chunks::<8>()
            .0
            .iter()
            .map(|l| f64::from_le_bytes(*l))
            .collect();
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn truncated_payload_rejected() {
        let entries = vec![(vec![1.0f32, 2.0], 7u64)];
        let mut payload = encode(2, 8, &entries);
        payload.truncate(payload.len() - 1);
        assert!(LeafColumns::parse(&payload, 2).is_err());
    }

    #[test]
    fn wrong_level_rejected() {
        let mut payload = encode(1, 8, &[(vec![0.0f32], 0u64)]);
        payload[0] = 3; // level = 3
        assert!(LeafColumns::parse(&payload, 1).is_err());
    }

    #[test]
    fn empty_leaf_parses() {
        let payload = encode(4, 512, &[]);
        let cols = LeafColumns::parse(&payload, 4).unwrap();
        assert!(cols.is_empty());
        assert_eq!(cols.coords(), &[] as &[u8]);
        assert_eq!(cols.data_ids().count(), 0);
    }
}
