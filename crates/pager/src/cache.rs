//! A write-back LRU buffer pool.
//!
//! Intentionally simple: a hash map of resident pages plus a `BTreeMap`
//! keyed by a monotone access tick for eviction order. All operations are
//! `O(log n)` in the number of resident pages, which is irrelevant next to
//! the page (de)serialization work above it.

use std::collections::{BTreeMap, HashMap};

use crate::page::PageId;

struct Entry {
    data: Box<[u8]>,
    dirty: bool,
    tick: u64,
}

/// A page pushed out of the pool to make room.
///
/// `dirty_data` is `Some` when the page carried unwritten changes —
/// the caller must write it back. Clean evictions are reported too so
/// the pager can count them (`IoStats::cache_evictions`).
#[must_use = "a dirty eviction must be written back"]
pub struct Eviction {
    /// The evicted page.
    pub id: PageId,
    /// The page image, if it still needs a write-back.
    pub dirty_data: Option<Box<[u8]>>,
}

/// LRU cache of page images. `capacity == 0` disables caching entirely —
/// the mode query experiments run in so logical reads equal physical reads.
pub struct LruCache {
    capacity: usize,
    next_tick: u64,
    map: HashMap<PageId, Entry>,
    order: BTreeMap<u64, PageId>,
}

impl LruCache {
    /// Create a cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            next_tick: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// Number of resident pages.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn bump(&mut self, id: PageId) {
        if let Some(e) = self.map.get_mut(&id) {
            self.order.remove(&e.tick);
            e.tick = self.next_tick;
            self.order.insert(self.next_tick, id);
            self.next_tick += 1;
        }
    }

    /// Look up a page, refreshing its recency.
    pub fn get(&mut self, id: PageId) -> Option<&[u8]> {
        if self.map.contains_key(&id) {
            self.bump(id);
            self.map.get(&id).map(|e| &*e.data)
        } else {
            None
        }
    }

    /// Insert (or overwrite) a page image. Returns the eviction made to
    /// make room, if any; a dirty victim carries its image and must be
    /// written back by the caller.
    #[must_use = "a dirty eviction must be written back"]
    pub fn insert(&mut self, id: PageId, data: Box<[u8]>, dirty: bool) -> Option<Eviction> {
        if self.capacity == 0 {
            debug_assert!(!dirty, "dirty insert into a disabled cache loses data");
            return None;
        }
        // Overwrite in place keeps an existing dirty bit sticky: a clean
        // re-read must not hide a pending write-back.
        if let Some(e) = self.map.get_mut(&id) {
            e.data = data;
            e.dirty = e.dirty || dirty;
            self.bump(id);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            if let Some((&tick, &victim)) = self.order.iter().next() {
                self.order.remove(&tick);
                if let Some(e) = self.map.remove(&victim) {
                    evicted = Some(Eviction {
                        id: victim,
                        dirty_data: e.dirty.then_some(e.data),
                    });
                }
            }
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.map.insert(id, Entry { data, dirty, tick });
        self.order.insert(tick, id);
        evicted
    }

    /// Drop a page without write-back (used by `free`).
    pub fn remove(&mut self, id: PageId) {
        if let Some(e) = self.map.remove(&id) {
            self.order.remove(&e.tick);
        }
    }

    /// Drain every dirty page (clearing its dirty bit) for a flush.
    pub fn drain_dirty(&mut self) -> Vec<(PageId, Box<[u8]>)> {
        let mut out = Vec::new();
        for (&id, e) in self.map.iter_mut() {
            if e.dirty {
                e.dirty = false;
                out.push((id, e.data.clone()));
            }
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Change capacity; returns every page evicted by a shrink (dirty
    /// ones carry their image for write-back).
    #[must_use = "dirty evictions must be written back"]
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<Eviction> {
        self.capacity = capacity;
        let mut out = Vec::new();
        while self.map.len() > self.capacity {
            let Some((&tick, &victim)) = self.order.iter().next() else {
                break; // order/map out of sync; nothing left to evict
            };
            self.order.remove(&tick);
            if let Some(e) = self.map.remove(&victim) {
                out.push(Eviction {
                    id: victim,
                    dirty_data: e.dirty.then_some(e.data),
                });
            } else {
                break; // order/map out of sync; avoid spinning forever
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> Box<[u8]> {
        vec![b; 8].into_boxed_slice()
    }

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.get(1).is_none());
        assert!(c.insert(1, page(1), false).is_none());
        assert_eq!(c.get(1).unwrap()[0], 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(c.insert(1, page(1), false).is_none());
        assert!(c.insert(2, page(2), false).is_none());
        let _ = c.get(1); // 2 is now LRU
        let ev = c.insert(3, page(3), false);
        assert_eq!(ev.map(|e| e.id), Some(2), "page 2 was LRU");
        assert!(c.get(2).is_none(), "page 2 should have been evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn dirty_eviction_returns_page_image() {
        let mut c = LruCache::new(1);
        assert!(c.insert(1, page(1), true).is_none());
        let ev = c.insert(2, page(2), false).expect("capacity 1 must evict");
        assert_eq!(ev.id, 1);
        assert_eq!(ev.dirty_data.as_deref().map(|d| d[0]), Some(1));
    }

    #[test]
    fn clean_eviction_reported_without_write_back() {
        let mut c = LruCache::new(1);
        assert!(c.insert(1, page(1), false).is_none());
        let ev = c.insert(2, page(2), false).expect("capacity 1 must evict");
        assert_eq!(ev.id, 1);
        assert!(ev.dirty_data.is_none(), "clean page needs no write-back");
    }

    #[test]
    fn overwrite_keeps_dirty_bit_sticky() {
        let mut c = LruCache::new(2);
        assert!(c.insert(1, page(1), true).is_none());
        assert!(c.insert(1, page(9), false).is_none()); // clean overwrite
        let dirty = c.drain_dirty();
        assert_eq!(dirty.len(), 1, "dirty bit must survive clean overwrite");
        assert_eq!(dirty[0].1[0], 9, "but the data must be the newest image");
    }

    #[test]
    fn drain_dirty_clears_bits() {
        let mut c = LruCache::new(4);
        assert!(c.insert(1, page(1), true).is_none());
        assert!(c.insert(2, page(2), false).is_none());
        assert_eq!(c.drain_dirty().len(), 1);
        assert_eq!(c.drain_dirty().len(), 0);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        assert!(c.is_empty());
        assert!(c.insert(1, page(1), false).is_none());
        assert!(c.get(1).is_none());
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn shrink_spills_dirty_pages() {
        let mut c = LruCache::new(3);
        assert!(c.insert(1, page(1), true).is_none());
        assert!(c.insert(2, page(2), true).is_none());
        assert!(c.insert(3, page(3), false).is_none());
        let spilled = c.set_capacity(1);
        assert_eq!(spilled.len(), 2, "two pages must leave the pool");
        assert_eq!(
            spilled.iter().filter(|e| e.dirty_data.is_some()).count(),
            2,
            "both evicted pages were dirty"
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_discards_silently() {
        let mut c = LruCache::new(2);
        assert!(c.insert(1, page(1), true).is_none());
        c.remove(1);
        assert!(c.get(1).is_none());
        assert!(c.drain_dirty().is_empty());
    }
}
