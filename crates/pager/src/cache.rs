//! A read-through LRU buffer pool.
//!
//! The pool holds *clean* copies only: every mutation is logged to the
//! write-ahead log before the image is cached, so an evicted page is
//! always recoverable from the log (or from the store once a checkpoint
//! has copied it there). Eviction therefore never writes anything back —
//! it just drops the copy and gets counted.
//!
//! Intentionally simple: a hash map of resident pages plus a `BTreeMap`
//! keyed by a monotone access tick for eviction order. All operations are
//! `O(log n)` in the number of resident pages, which is irrelevant next to
//! the page (de)serialization work above it.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::page::PageId;

struct Entry {
    /// Shared, immutable page image: a hit hands the caller a cheap
    /// `Arc` clone instead of copying the page, and eviction is safe
    /// while readers still hold the image.
    data: Arc<[u8]>,
    tick: u64,
}

/// LRU cache of page images. `capacity == 0` disables caching entirely —
/// the mode query experiments run in so logical reads equal physical reads.
pub struct LruCache {
    capacity: usize,
    next_tick: u64,
    map: HashMap<PageId, Entry>,
    order: BTreeMap<u64, PageId>,
}

impl LruCache {
    /// Create a cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            next_tick: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// Number of resident pages.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn bump(&mut self, id: PageId) {
        if let Some(e) = self.map.get_mut(&id) {
            self.order.remove(&e.tick);
            e.tick = self.next_tick;
            self.order.insert(self.next_tick, id);
            self.next_tick += 1;
        }
    }

    /// Look up a page, refreshing its recency. The returned image is a
    /// shared handle — no page bytes are copied on a hit.
    pub fn get(&mut self, id: PageId) -> Option<Arc<[u8]>> {
        if self.map.contains_key(&id) {
            self.bump(id);
            self.map.get(&id).map(|e| Arc::clone(&e.data))
        } else {
            None
        }
    }

    /// Insert (or overwrite) a page image. Returns whether a resident
    /// page was evicted to make room.
    pub fn insert(&mut self, id: PageId, data: Arc<[u8]>) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(e) = self.map.get_mut(&id) {
            e.data = data;
            self.bump(id);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            if let Some((&tick, &victim)) = self.order.iter().next() {
                self.order.remove(&tick);
                self.map.remove(&victim);
                evicted = true;
            }
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.map.insert(id, Entry { data, tick });
        self.order.insert(tick, id);
        evicted
    }

    /// Drop a page (used by `free`).
    pub fn remove(&mut self, id: PageId) {
        if let Some(e) = self.map.remove(&id) {
            self.order.remove(&e.tick);
        }
    }

    /// Change capacity; returns how many pages a shrink evicted.
    pub fn set_capacity(&mut self, capacity: usize) -> usize {
        self.capacity = capacity;
        let mut spilled = 0;
        while self.map.len() > self.capacity {
            let Some((&tick, &victim)) = self.order.iter().next() else {
                break; // order/map out of sync; nothing left to evict
            };
            self.order.remove(&tick);
            if self.map.remove(&victim).is_none() {
                break; // order/map out of sync; avoid spinning forever
            }
            spilled += 1;
        }
        spilled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> Arc<[u8]> {
        Arc::from(vec![b; 8])
    }

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.get(1).is_none());
        assert!(!c.insert(1, page(1)));
        assert_eq!(c.get(1).unwrap()[0], 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(!c.insert(1, page(1)));
        assert!(!c.insert(2, page(2)));
        let _ = c.get(1); // 2 is now LRU
        assert!(c.insert(3, page(3)), "full pool must evict");
        assert!(c.get(2).is_none(), "page 2 was LRU and should be gone");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn overwrite_refreshes_data_without_evicting() {
        let mut c = LruCache::new(1);
        assert!(!c.insert(1, page(1)));
        assert!(!c.insert(1, page(9)), "overwrite is not an eviction");
        assert_eq!(c.get(1).unwrap()[0], 9, "newest image wins");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        assert!(c.is_empty());
        assert!(!c.insert(1, page(1)));
        assert!(c.get(1).is_none());
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn shrink_counts_spills() {
        let mut c = LruCache::new(3);
        assert!(!c.insert(1, page(1)));
        assert!(!c.insert(2, page(2)));
        assert!(!c.insert(3, page(3)));
        assert_eq!(c.set_capacity(1), 2, "two pages must leave the pool");
        assert_eq!(c.len(), 1);
        assert_eq!(c.set_capacity(1), 0, "already at capacity");
    }

    #[test]
    fn remove_discards_silently() {
        let mut c = LruCache::new(2);
        assert!(!c.insert(1, page(1)));
        c.remove(1);
        assert!(c.get(1).is_none());
    }
}
