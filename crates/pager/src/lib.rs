//! Disk page store for the SR-tree reproduction.
//!
//! Every index structure in the workspace is disk-based the way the paper's
//! C++ implementation was: nodes and leaves are serialized into fixed-size
//! pages (8192 bytes by default, matching the paper's choice of "the disk
//! block size of the operating system") and fetched through a buffer pool.
//!
//! The pager exists for two reasons:
//!
//! 1. **Persistence** — an index can be built, closed, and reopened from its
//!    page file ([`PageFile::open`]).
//! 2. **Measurement** — the paper's principal cost metric is the *number of
//!    disk reads* per query, split into node-level and leaf-level reads
//!    (Figure 14). [`IoStats`] counts logical and physical page accesses per
//!    [`PageKind`]; query experiments read with the buffer pool disabled so
//!    logical = physical, reproducing the paper's cold-cache counts.
//!
//! ```
//! use sr_pager::{PageFile, PageKind};
//!
//! let pf = PageFile::create_in_memory(8192).unwrap();
//! let id = pf.allocate(PageKind::Leaf).unwrap();
//! pf.write(id, PageKind::Leaf, b"hello").unwrap();
//! assert_eq!(&pf.read(id, PageKind::Leaf).unwrap()[..5], b"hello");
//! assert_eq!(pf.stats().logical_reads(PageKind::Leaf), 1);
//! ```

#![forbid(unsafe_code)]

mod cache;
mod error;
mod fault;
mod leaf;
mod logstore;
mod page;
mod pagefile;
mod stats;
mod store;
mod sync;
mod wal;

pub use error::{PagerError, Result};
pub use fault::{FaultHandle, FaultInjector, FaultKind, FaultStats};
pub use leaf::{put_leaf_columns, LeafColumns, LEAF_HEADER};
pub use logstore::{wal_file_path, FileLogStore, LogStore, MemLogStore};
pub use page::{PageCodec, PageId, PageKind, PageReader, DEFAULT_PAGE_SIZE};
pub use pagefile::{PageBuf, PageFile};
pub use stats::IoStats;
pub use store::{FilePageStore, MemPageStore, PageStore};
pub use sync::{Mutex, RwLock};
pub use wal::{
    crc32, crc32_begin, crc32_finish, crc32_update, decode_frame, encode_commit_frame,
    encode_frame, encode_header, encode_page_frame, scan_log, FrameDecode, ScanOutcome, WalFrame,
    WalStats, FRAME_COMMIT, FRAME_HEADER, FRAME_PAGE, WAL_HEADER, WAL_MAGIC, WAL_VERSION,
};
