//! Raw byte-log storage backends for the write-ahead log: an in-memory
//! log for tests (shareable, so a test can "reboot" from the same bytes)
//! and a real file-backed log.
//!
//! A [`LogStore`] is deliberately dumber than a [`crate::PageStore`]: a
//! growable byte array with positioned reads and writes. All framing,
//! checksumming, and torn-tail handling lives in [`crate::wal`]; the
//! store only has to persist bytes. Writes are *positioned* rather than
//! appending so that a failed or torn append can be retried at the same
//! logical offset, overwriting its own garbage instead of burying it
//! mid-log where it would sever every later frame from the replay scan.

use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{PagerError, Result};
use crate::sync::Mutex;

/// A flat, growable byte log. Implementations are internally
/// synchronized so the pager's read path can fetch frames through
/// `&self` while the (single, by contract) writer appends.
pub trait LogStore: Send + Sync {
    /// Current physical length of the log in bytes. After a crash this
    /// may exceed the *logical* length tracked by the WAL layer; the
    /// replay scan resolves the difference via checksums.
    fn log_len(&self) -> u64;

    /// Read exactly `buf.len()` bytes starting at `off`.
    #[doc = "srlint: io"]
    fn read_log_at(&self, off: u64, buf: &mut [u8]) -> Result<()>;

    /// Write `data` at `off`, extending the log if it ends past the
    /// current length. Gaps created by writing past the end read as
    /// zeroes.
    #[doc = "srlint: io"]
    fn write_log_at(&self, off: u64, data: &[u8]) -> Result<()>;

    /// Shrink the log to `new_len` bytes (no-op if already shorter).
    #[doc = "srlint: io"]
    fn truncate_log(&self, new_len: u64) -> Result<()>;

    /// Flush to durable storage where applicable.
    #[doc = "srlint: io"]
    fn sync_log(&self) -> Result<()>;
}

/// An in-memory log store. Cloning shares the underlying bytes, which is
/// what lets crash tests keep a handle, "lose power" on the page file,
/// and reopen a fresh pager over the very same surviving bytes.
// srlint: send-sync -- the shared byte buffer sits behind a Mutex; clones share it by design so crash tests can reopen surviving bytes
#[derive(Clone, Default)]
pub struct MemLogStore {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemLogStore {
    /// Create an empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogStore for MemLogStore {
    fn log_len(&self) -> u64 {
        self.bytes.lock().len() as u64
    }

    fn read_log_at(&self, off: u64, buf: &mut [u8]) -> Result<()> {
        let bytes = self.bytes.lock();
        let off = usize::try_from(off)
            .map_err(|_| PagerError::Corrupt("log offset does not fit usize".into()))?;
        let end = off
            .checked_add(buf.len())
            .ok_or_else(|| PagerError::Corrupt("log read range overflows".into()))?;
        match bytes.get(off..end) {
            Some(src) => {
                buf.copy_from_slice(src);
                Ok(())
            }
            None => Err(PagerError::Corrupt(format!(
                "log read of {} byte(s) at {off} past end {}",
                buf.len(),
                bytes.len()
            ))),
        }
    }

    fn write_log_at(&self, off: u64, data: &[u8]) -> Result<()> {
        let mut bytes = self.bytes.lock();
        let off = usize::try_from(off)
            .map_err(|_| PagerError::Corrupt("log offset does not fit usize".into()))?;
        let end = off
            .checked_add(data.len())
            .ok_or_else(|| PagerError::Corrupt("log write range overflows".into()))?;
        if end > bytes.len() {
            bytes.resize(end, 0);
        }
        match bytes.get_mut(off..end) {
            Some(dst) => {
                dst.copy_from_slice(data);
                Ok(())
            }
            None => Err(PagerError::Corrupt("log write range out of bounds".into())),
        }
    }

    fn truncate_log(&self, new_len: u64) -> Result<()> {
        let mut bytes = self.bytes.lock();
        let new_len = usize::try_from(new_len)
            .map_err(|_| PagerError::Corrupt("log length does not fit usize".into()))?;
        if new_len < bytes.len() {
            bytes.truncate(new_len);
        }
        Ok(())
    }

    fn sync_log(&self) -> Result<()> {
        Ok(())
    }
}

/// A file-backed log store using positioned I/O, mirroring
/// [`crate::FilePageStore`].
// srlint: send-sync -- positioned I/O never mutates the File handle, which is fixed at construction; the logical length advances through an atomic
pub struct FileLogStore {
    file: File, // srlint: guarded-by(owner)
    len: AtomicU64,
}

impl FileLogStore {
    /// Create (truncating) a log file at `path`.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileLogStore {
            file,
            len: AtomicU64::new(0),
        })
    }

    /// Open the log file at `path`, creating an empty one if absent —
    /// a page file written before the WAL existed (or whose log was
    /// cleanly truncated away) simply has nothing to replay.
    pub fn open_or_create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileLogStore {
            file,
            len: AtomicU64::new(len),
        })
    }
}

impl LogStore for FileLogStore {
    fn log_len(&self) -> u64 {
        // srlint: ordering -- acquire pairs with the release in write_log_at: a loaded length guarantees the bytes up to it were handed to the OS
        self.len.load(Ordering::Acquire)
    }

    fn read_log_at(&self, off: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, off)?;
        Ok(())
    }

    fn write_log_at(&self, off: u64, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(data, off)?;
        let end = off
            .checked_add(data.len() as u64)
            .ok_or_else(|| PagerError::Corrupt("log write range overflows".into()))?;
        // srlint: ordering -- release publishes the new length only after write_all_at returns; pairs with the acquire load in log_len()
        self.len.fetch_max(end, Ordering::Release);
        Ok(())
    }

    fn truncate_log(&self, new_len: u64) -> Result<()> {
        if new_len < self.log_len() {
            self.file.set_len(new_len)?;
            // srlint: ordering -- release after set_len, same publication contract as write_log_at
            self.len.store(new_len, Ordering::Release);
        }
        Ok(())
    }

    fn sync_log(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// The conventional sibling path of a page file's write-ahead log:
/// `<page-file-path>.wal`.
pub fn wal_file_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(log: &dyn LogStore) {
        assert_eq!(log.log_len(), 0);
        log.write_log_at(0, b"hello").unwrap();
        assert_eq!(log.log_len(), 5);

        // Positioned overwrite does not move the end.
        log.write_log_at(1, b"a").unwrap();
        assert_eq!(log.log_len(), 5);
        let mut buf = [0u8; 5];
        log.read_log_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hallo");

        // Writing past the end zero-fills the gap.
        log.write_log_at(8, b"x").unwrap();
        assert_eq!(log.log_len(), 9);
        let mut buf = [9u8; 3];
        log.read_log_at(5, &mut buf).unwrap();
        assert_eq!(&buf, &[0, 0, 0]);

        // Reads past the end are typed errors.
        let mut buf = [0u8; 4];
        assert!(log.read_log_at(7, &mut buf).is_err());

        log.truncate_log(2).unwrap();
        assert_eq!(log.log_len(), 2);
        log.truncate_log(100).unwrap();
        assert_eq!(log.log_len(), 2, "truncate never grows");
        log.sync_log().unwrap();
    }

    #[test]
    fn mem_log_basics() {
        exercise(&MemLogStore::new());
    }

    #[test]
    fn mem_log_clones_share_bytes() {
        let a = MemLogStore::new();
        let b = a.clone();
        a.write_log_at(0, b"shared").unwrap();
        let mut buf = [0u8; 6];
        b.read_log_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
    }

    #[test]
    fn file_log_basics() {
        let dir = std::env::temp_dir().join(format!("sr-logstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("basics.wal");
        exercise(&FileLogStore::create(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_log_reopens_with_length() {
        let dir = std::env::temp_dir().join(format!("sr-logstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.wal");
        {
            let log = FileLogStore::create(&path).unwrap();
            log.write_log_at(0, b"abc").unwrap();
            log.sync_log().unwrap();
        }
        {
            let log = FileLogStore::open_or_create(&path).unwrap();
            assert_eq!(log.log_len(), 3);
            let mut buf = [0u8; 3];
            log.read_log_at(0, &mut buf).unwrap();
            assert_eq!(&buf, b"abc");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wal_path_is_a_sibling() {
        let p = wal_file_path(Path::new("/tmp/x.pages"));
        assert_eq!(p, Path::new("/tmp/x.pages.wal"));
    }
}
