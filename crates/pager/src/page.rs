//! Page identifiers, kinds, and a little-endian codec for page payloads.

/// Identifier of a page within a page file. Page 0 is always the metadata
/// page; user pages start at 1.
pub type PageId = u64;

/// Default page size, matching the paper: "The size of nodes and leaves is
/// set to 8192 bytes to meet with the disk block size of the operating
/// system."
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// What a page holds. The distinction between `Node` and `Leaf` is what
/// lets [`crate::IoStats`] reproduce Figure 14's node-level vs leaf-level
/// read counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PageKind {
    /// The page-file metadata page (always page 0).
    Meta = 0,
    /// An internal node of an index structure.
    Node = 1,
    /// A leaf of an index structure.
    Leaf = 2,
    /// A page on the free list.
    Free = 3,
}

impl PageKind {
    /// Decode from the header byte.
    pub fn from_u8(v: u8) -> Option<PageKind> {
        match v {
            0 => Some(PageKind::Meta),
            1 => Some(PageKind::Node),
            2 => Some(PageKind::Leaf),
            3 => Some(PageKind::Free),
            _ => None,
        }
    }
}

/// A cursor-based little-endian encoder/decoder over a byte buffer.
///
/// All node serialization in the index crates goes through this type, so
/// the on-disk format is uniform: fixed-width little-endian scalars, no
/// padding, no self-description. Reads panic on truncation in debug builds
/// and return garbage-free errors at the `PageFile` layer via length checks
/// made before decoding begins.
pub struct PageCodec<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> PageCodec<'a> {
    /// Wrap a buffer for encoding or decoding from offset 0.
    pub fn new(buf: &'a mut [u8]) -> Self {
        PageCodec { buf, pos: 0 }
    }

    /// Current cursor position (bytes consumed or produced so far).
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the cursor.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }

    /// Append a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf[self.pos..self.pos + 2].copy_from_slice(&v.to_le_bytes());
        self.pos += 2;
    }

    /// Append a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }

    /// Append an `f32` (little-endian bit pattern).
    pub fn put_f32(&mut self, v: f32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }

    /// Append a slice of `f32`s.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Append an `f64` (little-endian bit pattern).
    pub fn put_f64(&mut self, v: f64) {
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }

    /// Append coordinates widened to `f64` — the on-disk coordinate format
    /// of every index crate, reproducing the paper's 8-byte-per-coordinate
    /// fanout arithmetic (Table 1).
    pub fn put_coords(&mut self, vs: &[f32]) {
        for &v in vs {
            self.put_f64(v as f64);
        }
    }

    /// Skip `n` bytes, zero-filling them (reserved areas, e.g. the paper's
    /// 512-byte per-entry data area).
    pub fn put_padding(&mut self, n: usize) {
        self.buf[self.pos..self.pos + n].fill(0);
        self.pos += n;
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, bs: &[u8]) {
        self.buf[self.pos..self.pos + bs.len()].copy_from_slice(bs);
        self.pos += bs.len();
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.buf[self.pos..self.pos + 2].try_into().unwrap());
        self.pos += 2;
        v
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    /// Read an `f32`.
    pub fn get_f32(&mut self) -> f32 {
        let v = f32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    /// Read `n` `f32`s into a fresh vector.
    pub fn get_f32_vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.get_f32()).collect()
    }

    /// Read an `f64`.
    pub fn get_f64(&mut self) -> f64 {
        let v = f64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    /// Read `n` coordinates stored as `f64`, narrowing back to `f32`.
    pub fn get_coords(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.get_f64() as f32).collect()
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) {
        self.pos += n;
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> &[u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        for k in [
            PageKind::Meta,
            PageKind::Node,
            PageKind::Leaf,
            PageKind::Free,
        ] {
            assert_eq!(PageKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(PageKind::from_u8(42), None);
    }

    #[test]
    fn codec_roundtrip_scalars() {
        let mut buf = vec![0u8; 64];
        let mut w = PageCodec::new(&mut buf);
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(-1.5);
        let end = w.pos();

        let mut r = PageCodec::new(&mut buf);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_f32(), -1.5);
        assert_eq!(r.pos(), end);
    }

    #[test]
    fn codec_roundtrip_slices() {
        let mut buf = vec![0u8; 64];
        let vals = [1.0f32, -0.25, f32::MIN_POSITIVE, 3.25e7];
        let mut w = PageCodec::new(&mut buf);
        w.put_f32_slice(&vals);
        w.put_bytes(b"tail");
        let mut r = PageCodec::new(&mut buf);
        assert_eq!(r.get_f32_vec(4), vals);
        assert_eq!(r.get_bytes(4), b"tail");
    }

    #[test]
    fn remaining_tracks_cursor() {
        let mut buf = vec![0u8; 10];
        let mut c = PageCodec::new(&mut buf);
        assert_eq!(c.remaining(), 10);
        c.put_u32(1);
        assert_eq!(c.remaining(), 6);
    }

    #[test]
    fn coords_roundtrip_losslessly() {
        // f32 -> f64 -> f32 is exact for every f32.
        let mut buf = vec![0u8; 64];
        let coords = [0.1f32, -1.0e-20, 3.4e38, 0.0];
        let mut w = PageCodec::new(&mut buf);
        w.put_coords(&coords);
        let mut r = PageCodec::new(&mut buf);
        assert_eq!(r.get_coords(4), coords);
    }

    #[test]
    fn padding_zero_fills_and_skips() {
        let mut buf = vec![0xFFu8; 16];
        let mut w = PageCodec::new(&mut buf);
        w.put_u8(1);
        w.put_padding(8);
        w.put_u8(2);
        let mut r = PageCodec::new(&mut buf);
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_bytes(8), &[0u8; 8]);
        assert_eq!(r.get_u8(), 2);
        let mut r2 = PageCodec::new(&mut buf);
        r2.skip(9);
        assert_eq!(r2.get_u8(), 2);
    }

    #[test]
    fn nan_and_infinity_roundtrip() {
        let mut buf = vec![0u8; 16];
        let mut w = PageCodec::new(&mut buf);
        w.put_f32(f32::INFINITY);
        w.put_f32(f32::NEG_INFINITY);
        let mut r = PageCodec::new(&mut buf);
        assert_eq!(r.get_f32(), f32::INFINITY);
        assert_eq!(r.get_f32(), f32::NEG_INFINITY);
    }
}
