//! Page identifiers, kinds, and a little-endian codec for page payloads.
//!
//! This module is inside the srlint L2 audit scope: no slice indexing and
//! no `as` numeric casts, so a corrupted length field can only surface as
//! a typed [`PagerError::CodecOverrun`], never as a panic or a silently
//! wrapped value.

use crate::error::{PagerError, Result};

/// Identifier of a page within a page file. Page 0 is always the metadata
/// page; user pages start at 1.
pub type PageId = u64;

/// Default page size, matching the paper: "The size of nodes and leaves is
/// set to 8192 bytes to meet with the disk block size of the operating
/// system."
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// What a page holds. The distinction between `Node` and `Leaf` is what
/// lets [`crate::IoStats`] reproduce Figure 14's node-level vs leaf-level
/// read counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PageKind {
    /// The page-file metadata page (always page 0).
    Meta = 0,
    /// An internal node of an index structure.
    Node = 1,
    /// A leaf of an index structure.
    Leaf = 2,
    /// A page on the free list.
    Free = 3,
}

impl PageKind {
    /// Decode from the header byte.
    pub fn from_u8(v: u8) -> Option<PageKind> {
        match v {
            0 => Some(PageKind::Meta),
            1 => Some(PageKind::Node),
            2 => Some(PageKind::Leaf),
            3 => Some(PageKind::Free),
            _ => None,
        }
    }

    /// The header byte for this kind (the inverse of [`PageKind::from_u8`]).
    pub fn as_u8(self) -> u8 {
        match self {
            PageKind::Meta => 0,
            PageKind::Node => 1,
            PageKind::Leaf => 2,
            PageKind::Free => 3,
        }
    }
}

/// A cursor-based little-endian encoder/decoder over a byte buffer.
///
/// All node serialization in the index crates goes through this type, so
/// the on-disk format is uniform: fixed-width little-endian scalars, no
/// padding, no self-description. Every accessor is fallible: reads and
/// writes past the end of the buffer return
/// [`PagerError::CodecOverrun`] instead of panicking, which is what lets
/// the fault injector corrupt arbitrary pages without aborting the
/// process.
pub struct PageCodec<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> PageCodec<'a> {
    /// Wrap a buffer for encoding or decoding from offset 0.
    pub fn new(buf: &'a mut [u8]) -> Self {
        PageCodec { buf, pos: 0 }
    }

    /// Current cursor position (bytes consumed or produced so far).
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the cursor.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Claim the next `n` bytes, advancing the cursor.
    fn take(&mut self, n: usize) -> Result<&mut [u8]> {
        let overrun = PagerError::CodecOverrun {
            pos: self.pos,
            want: n,
            len: self.buf.len(),
        };
        let end = match self.pos.checked_add(n) {
            Some(end) => end,
            None => return Err(overrun),
        };
        match self.buf.get_mut(self.pos..end) {
            Some(s) => {
                self.pos = end;
                Ok(s)
            }
            None => Err(overrun),
        }
    }

    /// Read the next `N` bytes as a fixed-size array.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let s = self.take(N)?;
        <[u8; N]>::try_from(&*s)
            .map_err(|_| PagerError::Corrupt("codec take() length mismatch".into()))
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> Result<()> {
        self.take(1)?.copy_from_slice(&[v]);
        Ok(())
    }

    /// Append a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) -> Result<()> {
        self.take(2)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Append a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) -> Result<()> {
        self.take(4)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) -> Result<()> {
        self.take(8)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Append an `f32` (little-endian bit pattern).
    pub fn put_f32(&mut self, v: f32) -> Result<()> {
        self.take(4)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Append a slice of `f32`s.
    pub fn put_f32_slice(&mut self, vs: &[f32]) -> Result<()> {
        for &v in vs {
            self.put_f32(v)?;
        }
        Ok(())
    }

    /// Append an `f64` (little-endian bit pattern).
    pub fn put_f64(&mut self, v: f64) -> Result<()> {
        self.take(8)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Append coordinates widened to `f64` — the on-disk coordinate format
    /// of every index crate, reproducing the paper's 8-byte-per-coordinate
    /// fanout arithmetic (Table 1).
    pub fn put_coords(&mut self, vs: &[f32]) -> Result<()> {
        for &v in vs {
            self.put_f64(f64::from(v))?;
        }
        Ok(())
    }

    /// Skip `n` bytes, zero-filling them (reserved areas, e.g. the paper's
    /// 512-byte per-entry data area).
    pub fn put_padding(&mut self, n: usize) -> Result<()> {
        self.take(n)?.fill(0);
        Ok(())
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, bs: &[u8]) -> Result<()> {
        self.take(bs.len())?.copy_from_slice(bs);
        Ok(())
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(u8::from_le_bytes(self.take_array()?))
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Read an `f32`.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }

    /// Read `n` `f32`s into a fresh vector.
    pub fn get_f32_vec(&mut self, n: usize) -> Result<Vec<f32>> {
        (0..n).map(|_| self.get_f32()).collect()
    }

    /// Read an `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// Read `n` coordinates stored as `f64`, narrowing back to `f32`.
    pub fn get_coords(&mut self, n: usize) -> Result<Vec<f32>> {
        (0..n)
            // srlint: allow(cast) -- on-disk f64 coordinates narrow back to
            // the in-memory f32 format by design (paper Table 1 layout);
            // every stored value originated as an f32, so this is lossless.
            .map(|_| self.get_f64().map(|v| v as f32))
            .collect()
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n)?;
        Ok(())
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&[u8]> {
        Ok(&*self.take(n)?)
    }
}

/// A read-only cursor over a borrowed page image.
///
/// The decoding mirror of [`PageCodec`]: same little-endian accessors and
/// the same [`PagerError::CodecOverrun`] contract, but over `&[u8]`, so
/// pages served straight from the buffer pool (shared, immutable images)
/// can be parsed without copying them into a scratch buffer first.
pub struct PageReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PageReader<'a> {
    /// Wrap a buffer for decoding from offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        PageReader { buf, pos: 0 }
    }

    /// Current cursor position (bytes consumed so far).
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the cursor.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Claim the next `n` bytes, advancing the cursor.
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let overrun = PagerError::CodecOverrun {
            pos: self.pos,
            want: n,
            len: self.buf.len(),
        };
        let end = match self.pos.checked_add(n) {
            Some(end) => end,
            None => return Err(overrun),
        };
        match self.buf.get(self.pos..end) {
            Some(s) => {
                self.pos = end;
                Ok(s)
            }
            None => Err(overrun),
        }
    }

    /// Read the next `N` bytes as a fixed-size array.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let s = self.take(N)?;
        <[u8; N]>::try_from(s)
            .map_err(|_| PagerError::Corrupt("reader take() length mismatch".into()))
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(u8::from_le_bytes(self.take_array()?))
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Read an `f32`.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }

    /// Read `n` `f32`s into a fresh vector.
    pub fn get_f32_vec(&mut self, n: usize) -> Result<Vec<f32>> {
        (0..n).map(|_| self.get_f32()).collect()
    }

    /// Read an `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// Read `n` coordinates stored as `f64`, narrowing back to `f32`.
    pub fn get_coords(&mut self, n: usize) -> Result<Vec<f32>> {
        (0..n)
            // srlint: allow(cast) -- on-disk f64 coordinates narrow back to
            // the in-memory f32 format by design (paper Table 1 layout);
            // every stored value originated as an f32, so this is lossless.
            .map(|_| self.get_f64().map(|v| v as f32))
            .collect()
    }

    /// Read `n` coordinates into a caller-provided buffer, avoiding the
    /// per-call allocation of [`PageReader::get_coords`].
    pub fn get_coords_into(&mut self, n: usize, out: &mut Vec<f32>) -> Result<()> {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            // srlint: allow(cast) -- same lossless f64 -> f32 narrowing as
            // `get_coords`; see the note there.
            out.push(self.get_f64().map(|v| v as f32)?);
        }
        Ok(())
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n)?;
        Ok(())
    }

    /// Read `n` raw bytes; the slice borrows from the underlying buffer.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        for k in [
            PageKind::Meta,
            PageKind::Node,
            PageKind::Leaf,
            PageKind::Free,
        ] {
            assert_eq!(PageKind::from_u8(k.as_u8()), Some(k));
        }
        assert_eq!(PageKind::from_u8(42), None);
    }

    #[test]
    fn codec_roundtrip_scalars() {
        let mut buf = vec![0u8; 64];
        let mut w = PageCodec::new(&mut buf);
        w.put_u8(7).unwrap();
        w.put_u16(0xBEEF).unwrap();
        w.put_u32(0xDEAD_BEEF).unwrap();
        w.put_u64(u64::MAX - 1).unwrap();
        w.put_f32(-1.5).unwrap();
        let end = w.pos();

        let mut r = PageCodec::new(&mut buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32().unwrap(), -1.5);
        assert_eq!(r.pos(), end);
    }

    #[test]
    fn codec_roundtrip_slices() {
        let mut buf = vec![0u8; 64];
        let vals = [1.0f32, -0.25, f32::MIN_POSITIVE, 3.25e7];
        let mut w = PageCodec::new(&mut buf);
        w.put_f32_slice(&vals).unwrap();
        w.put_bytes(b"tail").unwrap();
        let mut r = PageCodec::new(&mut buf);
        assert_eq!(r.get_f32_vec(4).unwrap(), vals);
        assert_eq!(r.get_bytes(4).unwrap(), b"tail");
    }

    #[test]
    fn remaining_tracks_cursor() {
        let mut buf = vec![0u8; 10];
        let mut c = PageCodec::new(&mut buf);
        assert_eq!(c.remaining(), 10);
        c.put_u32(1).unwrap();
        assert_eq!(c.remaining(), 6);
    }

    #[test]
    fn coords_roundtrip_losslessly() {
        // f32 -> f64 -> f32 is exact for every f32.
        let mut buf = vec![0u8; 64];
        let coords = [0.1f32, -1.0e-20, 3.4e38, 0.0];
        let mut w = PageCodec::new(&mut buf);
        w.put_coords(&coords).unwrap();
        let mut r = PageCodec::new(&mut buf);
        assert_eq!(r.get_coords(4).unwrap(), coords);
    }

    #[test]
    fn padding_zero_fills_and_skips() {
        let mut buf = vec![0xFFu8; 16];
        let mut w = PageCodec::new(&mut buf);
        w.put_u8(1).unwrap();
        w.put_padding(8).unwrap();
        w.put_u8(2).unwrap();
        let mut r = PageCodec::new(&mut buf);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_bytes(8).unwrap(), &[0u8; 8]);
        assert_eq!(r.get_u8().unwrap(), 2);
        let mut r2 = PageCodec::new(&mut buf);
        r2.skip(9).unwrap();
        assert_eq!(r2.get_u8().unwrap(), 2);
    }

    #[test]
    fn nan_and_infinity_roundtrip() {
        let mut buf = vec![0u8; 16];
        let mut w = PageCodec::new(&mut buf);
        w.put_f32(f32::INFINITY).unwrap();
        w.put_f32(f32::NEG_INFINITY).unwrap();
        let mut r = PageCodec::new(&mut buf);
        assert_eq!(r.get_f32().unwrap(), f32::INFINITY);
        assert_eq!(r.get_f32().unwrap(), f32::NEG_INFINITY);
    }

    #[test]
    fn overrun_is_an_error_not_a_panic() {
        let mut buf = vec![0u8; 4];
        let mut r = PageCodec::new(&mut buf);
        assert!(r.get_u16().is_ok());
        assert!(matches!(
            r.get_u32(),
            Err(PagerError::CodecOverrun {
                pos: 2,
                want: 4,
                len: 4
            })
        ));
        let mut w = PageCodec::new(&mut buf);
        assert!(matches!(w.put_u64(1), Err(PagerError::CodecOverrun { .. })));
        // a failed access leaves the cursor where it was
        assert_eq!(w.pos(), 0);
        let mut s = PageCodec::new(&mut buf);
        assert!(s.skip(5).is_err());
        assert!(s.skip(4).is_ok());
    }
}
