//! Deterministic fault injection at the page-store and log-store
//! boundaries.
//!
//! [`FaultInjector::wrap_parts`] wraps a [`PageStore`] and a [`LogStore`]
//! around one shared fault state and forwards every call, except when a
//! fault armed through the paired [`FaultHandle`] applies. Because the
//! [`PageFile`](crate::PageFile) takes ownership of both stores, the
//! handle is the way to keep arming and inspecting faults after the page
//! file is built:
//!
//! ```
//! use sr_pager::{FaultInjector, MemLogStore, MemPageStore, PageFile, PageKind, PagerError};
//!
//! let (store, log, faults) = FaultInjector::wrap_parts(
//!     Box::new(MemPageStore::new(512)),
//!     Box::new(MemLogStore::new()),
//! );
//! let pf = PageFile::create_from_parts(store, log).unwrap();
//! pf.set_cache_capacity(0).unwrap();
//!
//! let id = pf.allocate(PageKind::Leaf).unwrap();
//! faults.fail_nth_write(0); // the very next write (a WAL append) fails
//! assert!(matches!(
//!     pf.write(id, PageKind::Leaf, b"x"),
//!     Err(PagerError::Injected { .. })
//! ));
//! faults.clear();
//! pf.write(id, PageKind::Leaf, b"x").unwrap(); // healthy again
//! ```
//!
//! The fault families, all deterministic:
//!
//! * **fail Nth** — the Nth read (or write) from *now* returns
//!   [`PagerError::Injected`] without touching the store;
//! * **torn write** — the Nth write persists only a prefix of the data
//!   and then errors, simulating a power cut mid-sector;
//! * **crash at write / sync** — the Nth write persists only a
//!   configurable prefix (a true torn-write-at-crash), or the Nth sync
//!   fails outright, and either way the crash *latches*: every
//!   subsequent read, write, grow, truncate, and sync fails, simulating
//!   the process being cut off from the device at exactly that I/O
//!   point. This is the primitive the crash-recovery suite enumerates.
//! * **crash budget** — after a total operation budget is exhausted,
//!   every subsequent operation fails.
//!
//! Page writes and log writes share one write counter (the Nth write is
//! the Nth write *anywhere*), as do page and log reads; syncs of either
//! store share the sync counter; log truncations count as grows. The
//! crash budget counts all of them together.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{PagerError, Result};
use crate::logstore::LogStore;
use crate::page::PageId;
use crate::store::PageStore;

/// Which injected fault fired — carried inside [`PagerError::Injected`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An armed Nth-read fault.
    Read,
    /// An armed Nth-write fault.
    Write,
    /// A torn (partial) write: a prefix reached the store, then the
    /// operation errored.
    TornWrite,
    /// A latched crash (at a write, at a sync, or past the op budget);
    /// all I/O is cut off.
    Crash,
}

/// Counters of what the injector has done, via [`FaultHandle::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads forwarded to the inner stores (successfully or not),
    /// page and log combined.
    pub reads: u64,
    /// Writes forwarded to the inner stores, page and log combined.
    pub writes: u64,
    /// Grows and log truncations forwarded.
    pub grows: u64,
    /// Syncs forwarded, page and log combined.
    pub syncs: u64,
    /// Faults of any kind injected.
    pub injected: u64,
    /// Torn writes performed (prefix persisted, error returned).
    pub torn_writes: u64,
}

const DISARMED: u64 = u64::MAX;

/// Shared state between the injector halves (owned by the page file)
/// and the [`FaultHandle`] (kept by the test).
// srlint: send-sync -- every field is a SeqCst atomic; the injector half and the test's FaultHandle race by design
#[derive(Debug)]
struct FaultState {
    // Operation counters since creation (never reset; faults are armed
    // relative to "now" by adding the current counter).
    reads: AtomicU64,
    writes: AtomicU64,
    grows: AtomicU64,
    syncs: AtomicU64,
    injected: AtomicU64,
    torn_writes: AtomicU64,
    // Absolute operation numbers at which each fault fires; DISARMED
    // means off.
    fail_read_at: AtomicU64,
    fail_write_at: AtomicU64,
    torn_write_at: AtomicU64,
    torn_keep_bytes: AtomicU64,
    crash_write_at: AtomicU64,
    crash_keep_bytes: AtomicU64,
    crash_sync_at: AtomicU64,
    // Total (read+write+grow+sync) budget after which everything fails.
    crash_at: AtomicU64,
    // Latched once a crash-at-write or crash-at-sync point fires.
    crash_fired: AtomicBool,
}

impl FaultState {
    // srlint: ordering -- SeqCst throughout the fault machinery: tests arm a trigger from one thread and count ops from workers, and a single total order keeps "fail the n-th op" deterministic; this is test-only code where clarity beats throughput
    fn new() -> Self {
        FaultState {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            grows: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            fail_read_at: AtomicU64::new(DISARMED),
            fail_write_at: AtomicU64::new(DISARMED),
            torn_write_at: AtomicU64::new(DISARMED),
            torn_keep_bytes: AtomicU64::new(0),
            crash_write_at: AtomicU64::new(DISARMED),
            crash_keep_bytes: AtomicU64::new(0),
            crash_sync_at: AtomicU64::new(DISARMED),
            crash_at: AtomicU64::new(DISARMED),
            crash_fired: AtomicBool::new(false),
        }
    }

    fn total_ops(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
            + self.writes.load(Ordering::SeqCst)
            + self.grows.load(Ordering::SeqCst)
            + self.syncs.load(Ordering::SeqCst)
    }

    fn crashed(&self) -> bool {
        self.crash_fired.load(Ordering::SeqCst)
            || self.total_ops() >= self.crash_at.load(Ordering::SeqCst)
    }

    fn inject(&self, kind: FaultKind, op: u64) -> PagerError {
        self.injected.fetch_add(1, Ordering::SeqCst);
        PagerError::Injected { kind, op }
    }

    /// Count a write and decide its fate. Returns `Ok(None)` for a clean
    /// pass-through, `Ok(Some(keep))` when only a `keep`-byte prefix may
    /// reach the device (torn or crash — the caller persists the prefix
    /// and then returns the given error by calling `inject`), or the
    /// injected error outright.
    fn on_write(&self) -> std::result::Result<Option<(usize, FaultKind, u64)>, PagerError> {
        if self.crashed() {
            return Err(self.inject(FaultKind::Crash, self.total_ops()));
        }
        let n = self.writes.fetch_add(1, Ordering::SeqCst);
        if n == self.fail_write_at.load(Ordering::SeqCst) {
            return Err(self.inject(FaultKind::Write, n));
        }
        if n == self.torn_write_at.load(Ordering::SeqCst) {
            let keep =
                usize::try_from(self.torn_keep_bytes.load(Ordering::SeqCst)).unwrap_or(usize::MAX);
            return Ok(Some((keep, FaultKind::TornWrite, n)));
        }
        if n == self.crash_write_at.load(Ordering::SeqCst) {
            self.crash_fired.store(true, Ordering::SeqCst);
            let keep =
                usize::try_from(self.crash_keep_bytes.load(Ordering::SeqCst)).unwrap_or(usize::MAX);
            return Ok(Some((keep, FaultKind::Crash, n)));
        }
        Ok(None)
    }

    fn on_read(&self) -> Result<()> {
        if self.crashed() {
            return Err(self.inject(FaultKind::Crash, self.total_ops()));
        }
        let n = self.reads.fetch_add(1, Ordering::SeqCst);
        if n == self.fail_read_at.load(Ordering::SeqCst) {
            return Err(self.inject(FaultKind::Read, n));
        }
        Ok(())
    }

    fn on_grow(&self) -> Result<()> {
        if self.crashed() {
            return Err(self.inject(FaultKind::Crash, self.total_ops()));
        }
        self.grows.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn on_sync(&self) -> Result<()> {
        if self.crashed() {
            return Err(self.inject(FaultKind::Crash, self.total_ops()));
        }
        let n = self.syncs.fetch_add(1, Ordering::SeqCst);
        if n == self.crash_sync_at.load(Ordering::SeqCst) {
            self.crash_fired.store(true, Ordering::SeqCst);
            return Err(self.inject(FaultKind::Crash, n));
        }
        Ok(())
    }
}

/// Test-side handle for arming faults and reading statistics.
///
/// Cloning is cheap; all clones share the same state.
#[derive(Clone, Debug)]
pub struct FaultHandle {
    state: Arc<FaultState>,
}

impl FaultHandle {
    // srlint: ordering -- SeqCst: arming a fault must be visible to the injector's very next op-counter read, and stats() must see every increment the workers published; see the FaultState note
    /// Fail the `n`-th read from now (0 = the very next read).
    pub fn fail_nth_read(&self, n: u64) {
        let at = self.state.reads.load(Ordering::SeqCst) + n;
        self.state.fail_read_at.store(at, Ordering::SeqCst);
    }

    /// Fail the `n`-th write from now (0 = the very next write).
    pub fn fail_nth_write(&self, n: u64) {
        let at = self.state.writes.load(Ordering::SeqCst) + n;
        self.state.fail_write_at.store(at, Ordering::SeqCst);
    }

    /// Make the `n`-th write from now *torn*: only the first
    /// `keep_bytes` bytes of the data reach the store, the rest of the
    /// target range keeps its previous contents, and the call errors.
    pub fn torn_nth_write(&self, n: u64, keep_bytes: usize) {
        let at = self.state.writes.load(Ordering::SeqCst) + n;
        self.state
            .torn_keep_bytes
            .store(keep_bytes as u64, Ordering::SeqCst);
        self.state.torn_write_at.store(at, Ordering::SeqCst);
    }

    /// Crash at the `n`-th write from now: the write persists only its
    /// first `keep_bytes` bytes (a torn tail at the crash point), the
    /// call errors, and every subsequent operation fails until
    /// [`FaultHandle::clear`]. `keep_bytes = usize::MAX` persists the
    /// whole write before cutting off.
    pub fn crash_at_write(&self, n: u64, keep_bytes: usize) {
        let at = self.state.writes.load(Ordering::SeqCst) + n;
        self.state
            .crash_keep_bytes
            .store(keep_bytes as u64, Ordering::SeqCst);
        self.state.crash_write_at.store(at, Ordering::SeqCst);
    }

    /// Crash at the `n`-th sync from now: the sync fails (nothing is
    /// made durable by it) and every subsequent operation fails until
    /// [`FaultHandle::clear`].
    pub fn crash_at_sync(&self, n: u64) {
        let at = self.state.syncs.load(Ordering::SeqCst) + n;
        self.state.crash_sync_at.store(at, Ordering::SeqCst);
    }

    /// Cut off all I/O after `n` more operations (reads + writes +
    /// grows + syncs). `n = 0` makes every subsequent operation fail.
    pub fn crash_after(&self, n: u64) {
        let at = self.state.total_ops() + n;
        self.state.crash_at.store(at, Ordering::SeqCst);
    }

    /// Disarm every pending fault (crash points and the latched crash
    /// included). Statistics are kept.
    pub fn clear(&self) {
        self.state.fail_read_at.store(DISARMED, Ordering::SeqCst);
        self.state.fail_write_at.store(DISARMED, Ordering::SeqCst);
        self.state.torn_write_at.store(DISARMED, Ordering::SeqCst);
        self.state.crash_write_at.store(DISARMED, Ordering::SeqCst);
        self.state.crash_sync_at.store(DISARMED, Ordering::SeqCst);
        self.state.crash_at.store(DISARMED, Ordering::SeqCst);
        self.state.crash_fired.store(false, Ordering::SeqCst);
    }

    /// Whether a crash point has fired or the crash budget has been
    /// reached.
    pub fn crashed(&self) -> bool {
        self.state.crash_fired.load(Ordering::SeqCst)
            || (self.state.crash_at.load(Ordering::SeqCst) != DISARMED && self.state.crashed())
    }

    /// Snapshot of the injector's counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            reads: self.state.reads.load(Ordering::SeqCst),
            writes: self.state.writes.load(Ordering::SeqCst),
            grows: self.state.grows.load(Ordering::SeqCst),
            syncs: self.state.syncs.load(Ordering::SeqCst),
            injected: self.state.injected.load(Ordering::SeqCst),
            torn_writes: self.state.torn_writes.load(Ordering::SeqCst),
        }
    }
}

/// A [`PageStore`] adapter that injects deterministic faults.
///
/// Built with [`FaultInjector::wrap`] (page store only) or
/// [`FaultInjector::wrap_parts`] (page store + log store sharing one
/// fault state), which return the boxed store(s) to hand to the page
/// file plus the [`FaultHandle`] to keep.
pub struct FaultInjector {
    inner: Box<dyn PageStore>,
    state: Arc<FaultState>,
}

impl FaultInjector {
    /// Wrap `inner`, returning the injector (as a boxed store, ready for
    /// [`PageFile::create_from_store`](crate::PageFile::create_from_store))
    /// and the handle that controls it. Note that a page file built this
    /// way logs to an *unfaulted* in-memory WAL; tests that want faults
    /// on the write path should use [`FaultInjector::wrap_parts`].
    pub fn wrap(inner: Box<dyn PageStore>) -> (Box<dyn PageStore>, FaultHandle) {
        let state = Arc::new(FaultState::new());
        let handle = FaultHandle {
            state: state.clone(),
        };
        (Box::new(FaultInjector { inner, state }), handle)
    }

    /// Wrap a page store and a log store around one shared fault state,
    /// ready for
    /// [`PageFile::create_from_parts`](crate::PageFile::create_from_parts)
    /// or [`PageFile::open_from_parts`](crate::PageFile::open_from_parts).
    /// Write, read, and sync counters span both stores, so a crash point
    /// enumerates every I/O the pager performs, wherever it lands.
    pub fn wrap_parts(
        page_store: Box<dyn PageStore>,
        log_store: Box<dyn LogStore>,
    ) -> (Box<dyn PageStore>, Box<dyn LogStore>, FaultHandle) {
        let state = Arc::new(FaultState::new());
        let handle = FaultHandle {
            state: state.clone(),
        };
        (
            Box::new(FaultInjector {
                inner: page_store,
                state: state.clone(),
            }),
            Box::new(FaultLogInjector {
                inner: log_store,
                state,
            }),
            handle,
        )
    }
}

impl PageStore for FaultInjector {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.state.on_read()?;
        self.inner.read_page(id, buf)
    }

    // srlint: ordering -- SeqCst torn-write counter: pairs with the armed trigger loads; see the FaultState note
    fn write_page(&self, id: PageId, data: &[u8]) -> Result<()> {
        match self.state.on_write()? {
            None => self.inner.write_page(id, data),
            Some((keep, kind, n)) => {
                let keep = keep.min(data.len());
                // Persist the prefix over the page's previous contents:
                // read the old page, splice the new prefix in, write it
                // back.
                let mut old = vec![0u8; self.inner.page_size()];
                if self.inner.read_page(id, &mut old).is_ok() {
                    if let (Some(dst), Some(src)) = (old.get_mut(..keep), data.get(..keep)) {
                        dst.copy_from_slice(src);
                    }
                    let _ = self.inner.write_page(id, &old);
                }
                self.state.torn_writes.fetch_add(1, Ordering::SeqCst);
                Err(self.state.inject(kind, n))
            }
        }
    }

    fn grow(&self, new_num_pages: u64) -> Result<()> {
        self.state.on_grow()?;
        self.inner.grow(new_num_pages)
    }

    fn sync(&self) -> Result<()> {
        self.state.on_sync()?;
        self.inner.sync()
    }
}

/// The [`LogStore`] half of [`FaultInjector::wrap_parts`].
struct FaultLogInjector {
    inner: Box<dyn LogStore>,
    state: Arc<FaultState>,
}

impl LogStore for FaultLogInjector {
    fn log_len(&self) -> u64 {
        self.inner.log_len()
    }

    fn read_log_at(&self, off: u64, buf: &mut [u8]) -> Result<()> {
        self.state.on_read()?;
        self.inner.read_log_at(off, buf)
    }

    // srlint: ordering -- SeqCst torn-write counter: pairs with the armed trigger loads; see the FaultState note
    fn write_log_at(&self, off: u64, data: &[u8]) -> Result<()> {
        match self.state.on_write()? {
            None => self.inner.write_log_at(off, data),
            Some((keep, kind, n)) => {
                // A torn log append: only the prefix lands; whatever the
                // log held beyond it (old-generation bytes or nothing)
                // survives as-is, exactly like a power cut mid-append.
                let keep = keep.min(data.len());
                if let Some(prefix) = data.get(..keep) {
                    if !prefix.is_empty() {
                        let _ = self.inner.write_log_at(off, prefix);
                    }
                }
                self.state.torn_writes.fetch_add(1, Ordering::SeqCst);
                Err(self.state.inject(kind, n))
            }
        }
    }

    fn truncate_log(&self, new_len: u64) -> Result<()> {
        self.state.on_grow()?;
        self.inner.truncate_log(new_len)
    }

    fn sync_log(&self) -> Result<()> {
        self.state.on_sync()?;
        self.inner.sync_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logstore::MemLogStore;
    use crate::store::MemPageStore;

    fn wrapped(page_size: usize) -> (Box<dyn PageStore>, FaultHandle) {
        FaultInjector::wrap(Box::new(MemPageStore::new(page_size)))
    }

    #[test]
    fn passthrough_when_disarmed() {
        let (store, faults) = wrapped(64);
        store.grow(2).unwrap();
        store.write_page(0, &[7u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        let s = faults.stats();
        assert_eq!((s.reads, s.writes, s.grows, s.injected), (1, 1, 1, 0));
    }

    #[test]
    fn nth_read_fails_once() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        store.write_page(0, &[1u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        faults.fail_nth_read(1); // the read after the next
        store.read_page(0, &mut buf).unwrap();
        let err = store.read_page(0, &mut buf).unwrap_err();
        assert!(matches!(
            err,
            PagerError::Injected {
                kind: FaultKind::Read,
                ..
            }
        ));
        // One-shot: the counter has moved past the armed point.
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(faults.stats().injected, 1);
    }

    #[test]
    fn nth_write_fails_and_leaves_page_untouched() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        store.write_page(0, &[1u8; 64]).unwrap();
        faults.fail_nth_write(0);
        let err = store.write_page(0, &[2u8; 64]).unwrap_err();
        assert!(matches!(
            err,
            PagerError::Injected {
                kind: FaultKind::Write,
                ..
            }
        ));
        let mut buf = [0u8; 64];
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 64], "failed write must not reach the store");
    }

    #[test]
    fn torn_write_persists_only_the_prefix() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        store.write_page(0, &[0xAA; 64]).unwrap();
        faults.torn_nth_write(0, 3);
        let err = store.write_page(0, &[0xBB; 64]).unwrap_err();
        assert!(matches!(
            err,
            PagerError::Injected {
                kind: FaultKind::TornWrite,
                ..
            }
        ));
        let mut buf = [0u8; 64];
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(&buf[..3], &[0xBB; 3], "prefix must be the new data");
        assert_eq!(&buf[3..], &[0xAA; 61], "suffix must be the old data");
        assert_eq!(faults.stats().torn_writes, 1);
    }

    #[test]
    fn crash_budget_cuts_off_everything() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        faults.crash_after(2);
        let mut buf = [0u8; 64];
        store.write_page(0, &[1u8; 64]).unwrap();
        store.read_page(0, &mut buf).unwrap();
        assert!(faults.crashed());
        for _ in 0..3 {
            assert!(matches!(
                store.read_page(0, &mut buf),
                Err(PagerError::Injected {
                    kind: FaultKind::Crash,
                    ..
                })
            ));
            assert!(matches!(
                store.write_page(0, &[2u8; 64]),
                Err(PagerError::Injected {
                    kind: FaultKind::Crash,
                    ..
                })
            ));
            assert!(matches!(
                store.grow(4),
                Err(PagerError::Injected {
                    kind: FaultKind::Crash,
                    ..
                })
            ));
            assert!(
                store.sync().is_err(),
                "a crashed device must not pretend to sync"
            );
        }
        faults.clear();
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 64]);
    }

    #[test]
    fn crash_at_write_tears_and_latches() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        store.write_page(0, &[0xAA; 64]).unwrap();
        faults.crash_at_write(0, 5);
        let err = store.write_page(0, &[0xBB; 64]).unwrap_err();
        assert!(matches!(
            err,
            PagerError::Injected {
                kind: FaultKind::Crash,
                ..
            }
        ));
        assert!(faults.crashed(), "crash point must latch");
        let mut buf = [0u8; 64];
        assert!(store.read_page(0, &mut buf).is_err(), "latched: no reads");
        assert!(store.sync().is_err(), "latched: no syncs");
        faults.clear();
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(&buf[..5], &[0xBB; 5], "crash kept the 5-byte prefix");
        assert_eq!(&buf[5..], &[0xAA; 59], "suffix survived from before");
    }

    #[test]
    fn crash_at_sync_fails_the_barrier_and_latches() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        store.sync().unwrap();
        faults.crash_at_sync(1); // the sync after the next
        store.sync().unwrap();
        assert!(matches!(
            store.sync(),
            Err(PagerError::Injected {
                kind: FaultKind::Crash,
                ..
            })
        ));
        assert!(faults.crashed());
        assert!(store.write_page(0, &[1u8; 64]).is_err());
        faults.clear();
        assert!(!faults.crashed());
        store.sync().unwrap();
        assert_eq!(faults.stats().syncs, 4);
    }

    #[test]
    fn shared_state_spans_page_and_log_stores() {
        let (store, log, faults) = FaultInjector::wrap_parts(
            Box::new(MemPageStore::new(64)),
            Box::new(MemLogStore::new()),
        );
        store.grow(1).unwrap();
        // Writes share one counter: arm the 2nd write, then do one page
        // write and one log write — the log write is the one that fails.
        faults.fail_nth_write(1);
        store.write_page(0, &[1u8; 64]).unwrap();
        let err = log.write_log_at(0, b"frame").unwrap_err();
        assert!(matches!(
            err,
            PagerError::Injected {
                kind: FaultKind::Write,
                ..
            }
        ));
        faults.clear();

        // A torn log write keeps only the prefix.
        faults.torn_nth_write(0, 2); // the very next write
        assert!(log.write_log_at(0, b"abcdef").is_err());
        assert_eq!(log.log_len(), 2, "only the 2-byte prefix landed");
        let mut buf = [0u8; 2];
        log.read_log_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ab");

        // Log syncs and truncations are crashable too.
        faults.clear();
        faults.crash_at_sync(0);
        assert!(log.sync_log().is_err());
        assert!(log.truncate_log(0).is_err(), "latched after the sync crash");
        assert!(store.read_page(0, &mut [0u8; 64]).is_err());
        faults.clear();
        log.truncate_log(0).unwrap();
    }

    #[test]
    fn clear_disarms_pending_faults() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        faults.fail_nth_write(0);
        faults.fail_nth_read(0);
        faults.clear();
        store.write_page(0, &[1u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(faults.stats().injected, 0);
    }
}
