//! Deterministic fault injection at the page-store boundary.
//!
//! [`FaultInjector`] wraps any [`PageStore`] and forwards every call,
//! except when a fault armed through its paired [`FaultHandle`] applies.
//! Because the [`PageFile`](crate::PageFile) takes ownership of its store
//! (`Box<dyn PageStore>`), the handle is the way to keep arming and
//! inspecting faults after the page file is built:
//!
//! ```
//! use sr_pager::{FaultInjector, MemPageStore, PageFile, PageKind, PagerError};
//!
//! let (store, faults) = FaultInjector::wrap(Box::new(MemPageStore::new(512)));
//! let pf = PageFile::create_from_store(store).unwrap();
//! pf.set_cache_capacity(0).unwrap(); // every logical op hits the store
//!
//! let id = pf.allocate(PageKind::Leaf).unwrap();
//! faults.fail_nth_write(0); // the very next write fails
//! assert!(matches!(
//!     pf.write(id, PageKind::Leaf, b"x"),
//!     Err(PagerError::Injected { .. })
//! ));
//! faults.clear();
//! pf.write(id, PageKind::Leaf, b"x").unwrap(); // store is healthy again
//! ```
//!
//! Three fault families are supported, all deterministic:
//!
//! * **fail Nth** — the Nth read (or write) from *now* returns
//!   [`PagerError::Injected`] without touching the store;
//! * **torn write** — the Nth write persists only a prefix of the page
//!   and then errors, simulating a power cut mid-sector;
//! * **crash point** — after a total operation budget is exhausted, every
//!   subsequent read, write, and grow fails, simulating the process being
//!   cut off from the device.
//!
//! Reads and writes are counted separately for the Nth-op faults; the
//! crash budget counts reads + writes + grows. `sync` is never failed:
//! it is called from `Drop` paths and must stay quiet.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{PagerError, Result};
use crate::page::PageId;
use crate::store::PageStore;

/// Which injected fault fired — carried inside [`PagerError::Injected`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An armed Nth-read fault.
    Read,
    /// An armed Nth-write fault.
    Write,
    /// A torn (partial) write: a prefix reached the store, then the
    /// operation errored.
    TornWrite,
    /// The crash budget is exhausted; all I/O is cut off.
    Crash,
}

/// Counters of what the injector has done, via [`FaultHandle::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads forwarded to the inner store (successfully or not).
    pub reads: u64,
    /// Writes forwarded to the inner store.
    pub writes: u64,
    /// Grows forwarded to the inner store.
    pub grows: u64,
    /// Faults of any kind injected.
    pub injected: u64,
    /// Torn writes performed (prefix persisted, error returned).
    pub torn_writes: u64,
}

const DISARMED: u64 = u64::MAX;

/// Shared state between the [`FaultInjector`] (owned by the page file)
/// and the [`FaultHandle`] (kept by the test).
#[derive(Debug)]
struct FaultState {
    // Operation counters since creation (never reset; faults are armed
    // relative to "now" by adding the current counter).
    reads: AtomicU64,
    writes: AtomicU64,
    grows: AtomicU64,
    injected: AtomicU64,
    torn_writes: AtomicU64,
    // Absolute operation numbers at which each fault fires; DISARMED
    // means off.
    fail_read_at: AtomicU64,
    fail_write_at: AtomicU64,
    torn_write_at: AtomicU64,
    torn_keep_bytes: AtomicU64,
    // Total (read+write+grow) budget after which everything fails.
    crash_at: AtomicU64,
}

impl FaultState {
    // srlint: ordering -- SeqCst throughout the fault machinery: tests arm a trigger from one thread and count ops from workers, and a single total order keeps "fail the n-th op" deterministic; this is test-only code where clarity beats throughput
    fn new() -> Self {
        FaultState {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            grows: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            fail_read_at: AtomicU64::new(DISARMED),
            fail_write_at: AtomicU64::new(DISARMED),
            torn_write_at: AtomicU64::new(DISARMED),
            torn_keep_bytes: AtomicU64::new(0),
            crash_at: AtomicU64::new(DISARMED),
        }
    }

    fn total_ops(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
            + self.writes.load(Ordering::SeqCst)
            + self.grows.load(Ordering::SeqCst)
    }

    fn crashed(&self) -> bool {
        self.total_ops() >= self.crash_at.load(Ordering::SeqCst)
    }

    fn inject(&self, kind: FaultKind, op: u64) -> PagerError {
        self.injected.fetch_add(1, Ordering::SeqCst);
        PagerError::Injected { kind, op }
    }
}

/// Test-side handle for arming faults and reading statistics.
///
/// Cloning is cheap; all clones share the same state.
#[derive(Clone, Debug)]
pub struct FaultHandle {
    state: Arc<FaultState>,
}

impl FaultHandle {
    // srlint: ordering -- SeqCst: arming a fault must be visible to the injector's very next op-counter read, and stats() must see every increment the workers published; see the FaultState note
    /// Fail the `n`-th read from now (0 = the very next read).
    pub fn fail_nth_read(&self, n: u64) {
        let at = self.state.reads.load(Ordering::SeqCst) + n;
        self.state.fail_read_at.store(at, Ordering::SeqCst);
    }

    /// Fail the `n`-th write from now (0 = the very next write).
    pub fn fail_nth_write(&self, n: u64) {
        let at = self.state.writes.load(Ordering::SeqCst) + n;
        self.state.fail_write_at.store(at, Ordering::SeqCst);
    }

    /// Make the `n`-th write from now *torn*: only the first
    /// `keep_bytes` bytes of the page reach the store, the rest of the
    /// page keeps its previous contents, and the call errors.
    pub fn torn_nth_write(&self, n: u64, keep_bytes: usize) {
        let at = self.state.writes.load(Ordering::SeqCst) + n;
        self.state
            .torn_keep_bytes
            .store(keep_bytes as u64, Ordering::SeqCst);
        self.state.torn_write_at.store(at, Ordering::SeqCst);
    }

    /// Cut off all I/O after `n` more operations (reads + writes +
    /// grows). `n = 0` makes every subsequent operation fail.
    pub fn crash_after(&self, n: u64) {
        let at = self.state.total_ops() + n;
        self.state.crash_at.store(at, Ordering::SeqCst);
    }

    /// Disarm every pending fault (the crash point included). Statistics
    /// are kept.
    pub fn clear(&self) {
        self.state.fail_read_at.store(DISARMED, Ordering::SeqCst);
        self.state.fail_write_at.store(DISARMED, Ordering::SeqCst);
        self.state.torn_write_at.store(DISARMED, Ordering::SeqCst);
        self.state.crash_at.store(DISARMED, Ordering::SeqCst);
    }

    /// Whether the crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.state.crash_at.load(Ordering::SeqCst) != DISARMED && self.state.crashed()
    }

    /// Snapshot of the injector's counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            reads: self.state.reads.load(Ordering::SeqCst),
            writes: self.state.writes.load(Ordering::SeqCst),
            grows: self.state.grows.load(Ordering::SeqCst),
            injected: self.state.injected.load(Ordering::SeqCst),
            torn_writes: self.state.torn_writes.load(Ordering::SeqCst),
        }
    }
}

/// A [`PageStore`] adapter that injects deterministic faults.
///
/// Built with [`FaultInjector::wrap`], which returns the boxed store to
/// hand to the page file plus the [`FaultHandle`] to keep.
pub struct FaultInjector {
    inner: Box<dyn PageStore>,
    state: Arc<FaultState>,
}

impl FaultInjector {
    /// Wrap `inner`, returning the injector (as a boxed store, ready for
    /// [`PageFile::create_from_store`](crate::PageFile::create_from_store))
    /// and the handle that controls it.
    pub fn wrap(inner: Box<dyn PageStore>) -> (Box<dyn PageStore>, FaultHandle) {
        let state = Arc::new(FaultState::new());
        let handle = FaultHandle {
            state: state.clone(),
        };
        (Box::new(FaultInjector { inner, state }), handle)
    }
}

impl PageStore for FaultInjector {
    // srlint: ordering -- SeqCst op counters: each fetch_add both numbers the op and is compared against the armed trigger, so the injector and the arming thread must agree on one interleaving; see the FaultState note
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if self.state.crashed() {
            return Err(self.state.inject(FaultKind::Crash, self.state.total_ops()));
        }
        let n = self.state.reads.fetch_add(1, Ordering::SeqCst);
        if n == self.state.fail_read_at.load(Ordering::SeqCst) {
            return Err(self.state.inject(FaultKind::Read, n));
        }
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, data: &[u8]) -> Result<()> {
        if self.state.crashed() {
            return Err(self.state.inject(FaultKind::Crash, self.state.total_ops()));
        }
        let n = self.state.writes.fetch_add(1, Ordering::SeqCst);
        if n == self.state.fail_write_at.load(Ordering::SeqCst) {
            return Err(self.state.inject(FaultKind::Write, n));
        }
        if n == self.state.torn_write_at.load(Ordering::SeqCst) {
            let keep = usize::try_from(self.state.torn_keep_bytes.load(Ordering::SeqCst))
                .unwrap_or(usize::MAX)
                .min(data.len());
            // Persist the prefix over the page's previous contents: read
            // the old page, splice the new prefix in, write it back.
            let mut old = vec![0u8; self.inner.page_size()];
            if self.inner.read_page(id, &mut old).is_ok() {
                if let (Some(dst), Some(src)) = (old.get_mut(..keep), data.get(..keep)) {
                    dst.copy_from_slice(src);
                }
                let _ = self.inner.write_page(id, &old);
            }
            self.state.torn_writes.fetch_add(1, Ordering::SeqCst);
            return Err(self.state.inject(FaultKind::TornWrite, n));
        }
        self.inner.write_page(id, data)
    }

    fn grow(&self, new_num_pages: u64) -> Result<()> {
        if self.state.crashed() {
            return Err(self.state.inject(FaultKind::Crash, self.state.total_ops()));
        }
        self.state.grows.fetch_add(1, Ordering::SeqCst);
        self.inner.grow(new_num_pages)
    }

    fn sync(&self) -> Result<()> {
        // Never failed: sync runs from Drop paths and must stay quiet.
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemPageStore;

    fn wrapped(page_size: usize) -> (Box<dyn PageStore>, FaultHandle) {
        FaultInjector::wrap(Box::new(MemPageStore::new(page_size)))
    }

    #[test]
    fn passthrough_when_disarmed() {
        let (store, faults) = wrapped(64);
        store.grow(2).unwrap();
        store.write_page(0, &[7u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        let s = faults.stats();
        assert_eq!((s.reads, s.writes, s.grows, s.injected), (1, 1, 1, 0));
    }

    #[test]
    fn nth_read_fails_once() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        store.write_page(0, &[1u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        faults.fail_nth_read(1); // the read after the next
        store.read_page(0, &mut buf).unwrap();
        let err = store.read_page(0, &mut buf).unwrap_err();
        assert!(matches!(
            err,
            PagerError::Injected {
                kind: FaultKind::Read,
                ..
            }
        ));
        // One-shot: the counter has moved past the armed point.
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(faults.stats().injected, 1);
    }

    #[test]
    fn nth_write_fails_and_leaves_page_untouched() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        store.write_page(0, &[1u8; 64]).unwrap();
        faults.fail_nth_write(0);
        let err = store.write_page(0, &[2u8; 64]).unwrap_err();
        assert!(matches!(
            err,
            PagerError::Injected {
                kind: FaultKind::Write,
                ..
            }
        ));
        let mut buf = [0u8; 64];
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 64], "failed write must not reach the store");
    }

    #[test]
    fn torn_write_persists_only_the_prefix() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        store.write_page(0, &[0xAA; 64]).unwrap();
        faults.torn_nth_write(0, 3);
        let err = store.write_page(0, &[0xBB; 64]).unwrap_err();
        assert!(matches!(
            err,
            PagerError::Injected {
                kind: FaultKind::TornWrite,
                ..
            }
        ));
        let mut buf = [0u8; 64];
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(&buf[..3], &[0xBB; 3], "prefix must be the new data");
        assert_eq!(&buf[3..], &[0xAA; 61], "suffix must be the old data");
        assert_eq!(faults.stats().torn_writes, 1);
    }

    #[test]
    fn crash_point_cuts_off_everything() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        faults.crash_after(2);
        let mut buf = [0u8; 64];
        store.write_page(0, &[1u8; 64]).unwrap();
        store.read_page(0, &mut buf).unwrap();
        assert!(faults.crashed());
        for _ in 0..3 {
            assert!(matches!(
                store.read_page(0, &mut buf),
                Err(PagerError::Injected {
                    kind: FaultKind::Crash,
                    ..
                })
            ));
            assert!(matches!(
                store.write_page(0, &[2u8; 64]),
                Err(PagerError::Injected {
                    kind: FaultKind::Crash,
                    ..
                })
            ));
            assert!(matches!(
                store.grow(4),
                Err(PagerError::Injected {
                    kind: FaultKind::Crash,
                    ..
                })
            ));
        }
        store.sync().unwrap(); // sync stays quiet even after the crash
        faults.clear();
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 64]);
    }

    #[test]
    fn clear_disarms_pending_faults() {
        let (store, faults) = wrapped(64);
        store.grow(1).unwrap();
        faults.fail_nth_write(0);
        faults.fail_nth_read(0);
        faults.clear();
        store.write_page(0, &[1u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(faults.stats().injected, 0);
    }
}
