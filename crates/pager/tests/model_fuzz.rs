//! Model-based fuzzing of the page file: a random sequence of
//! allocate/write/read/free/flush/cache-resize operations is run against
//! both the real `PageFile` and a trivial in-memory model; they must
//! agree at every step, under every cache capacity.

use std::collections::HashMap;

use proptest::prelude::*;
use sr_pager::{PageFile, PageId, PageKind};

#[derive(Clone, Debug)]
enum Op {
    Allocate,
    /// Write to the i-th live page (mod live count) with given fill byte
    /// and length.
    Write(usize, u8, usize),
    /// Read the i-th live page and compare with the model.
    Read(usize),
    /// Free the i-th live page.
    Free(usize),
    Flush,
    SetCache(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Allocate),
        4 => (any::<usize>(), any::<u8>(), 0usize..200).prop_map(|(i, b, l)| Op::Write(i, b, l)),
        4 => any::<usize>().prop_map(Op::Read),
        1 => any::<usize>().prop_map(Op::Free),
        1 => Just(Op::Flush),
        1 => (0usize..8).prop_map(Op::SetCache),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pagefile_matches_model(ops in prop::collection::vec(arb_op(), 1..120)) {
        let pf = PageFile::create_in_memory(512);
        let mut model: HashMap<PageId, Vec<u8>> = HashMap::new();
        let mut live: Vec<PageId> = Vec::new();

        for op in ops {
            match op {
                Op::Allocate => {
                    let id = pf.allocate(PageKind::Leaf).unwrap();
                    prop_assert!(!model.contains_key(&id), "allocated a live page twice");
                    model.insert(id, Vec::new());
                    live.push(id);
                }
                Op::Write(i, b, l) => {
                    if live.is_empty() { continue; }
                    let id = live[i % live.len()];
                    let payload = vec![b; l.min(pf.capacity())];
                    pf.write(id, PageKind::Leaf, &payload).unwrap();
                    model.insert(id, payload);
                }
                Op::Read(i) => {
                    if live.is_empty() { continue; }
                    let id = live[i % live.len()];
                    let got = pf.read(id, PageKind::Leaf).unwrap();
                    prop_assert_eq!(&got, model.get(&id).unwrap());
                }
                Op::Free(i) => {
                    if live.is_empty() { continue; }
                    let idx = i % live.len();
                    let id = live.swap_remove(idx);
                    pf.free(id).unwrap();
                    model.remove(&id);
                }
                Op::Flush => pf.flush().unwrap(),
                Op::SetCache(n) => pf.set_cache_capacity(n).unwrap(),
            }
        }

        // Final sweep: every live page still reads back exactly.
        for &id in &live {
            let got = pf.read(id, PageKind::Leaf).unwrap();
            prop_assert_eq!(&got, model.get(&id).unwrap());
        }
    }

    /// The same trace must also survive persistence: flush, reopen from
    /// the same backing store — wait, the in-memory store dies with the
    /// PageFile, so persistence is tested through a real file instead.
    #[test]
    fn pagefile_trace_survives_reopen(ops in prop::collection::vec(arb_op(), 1..60)) {
        let dir = std::env::temp_dir().join(format!("sr-pager-fuzz-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Unique file per proptest case to avoid clashes.
        let path = dir.join(format!(
            "trace-{}.pages",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut model: HashMap<PageId, Vec<u8>> = HashMap::new();
        let mut live: Vec<PageId> = Vec::new();
        {
            let pf = PageFile::create_with_page_size(&path, 512).unwrap();
            for op in ops {
                match op {
                    Op::Allocate => {
                        let id = pf.allocate(PageKind::Leaf).unwrap();
                        model.insert(id, Vec::new());
                        live.push(id);
                    }
                    Op::Write(i, b, l) => {
                        if live.is_empty() { continue; }
                        let id = live[i % live.len()];
                        let payload = vec![b; l.min(pf.capacity())];
                        pf.write(id, PageKind::Leaf, &payload).unwrap();
                        model.insert(id, payload);
                    }
                    Op::Free(i) => {
                        if live.is_empty() { continue; }
                        let idx = i % live.len();
                        let id = live.swap_remove(idx);
                        pf.free(id).unwrap();
                        model.remove(&id);
                    }
                    // reads/flushes/cache changes are irrelevant to what
                    // must persist
                    _ => {}
                }
            }
            pf.flush().unwrap();
        }
        let pf = PageFile::open(&path).unwrap();
        for &id in &live {
            let got = pf.read(id, PageKind::Leaf).unwrap();
            prop_assert_eq!(&got, model.get(&id).unwrap());
        }
        std::fs::remove_file(&path).ok();
    }
}
