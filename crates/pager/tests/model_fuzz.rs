//! Model-based fuzzing of the page file: a random sequence of
//! allocate/write/read/free/flush/cache-resize operations is run against
//! both the real `PageFile` and a trivial in-memory model; they must
//! agree at every step, under every cache capacity.
//!
//! Deterministic seeded loops stand in for a property-testing framework
//! (the workspace carries no registry dependencies): each case derives
//! from a fixed base seed, so any failure message's seed reproduces the
//! exact op sequence.

use std::collections::HashMap;

use sr_dataset::SeededRng;
use sr_pager::{PageFile, PageId, PageKind};

#[derive(Clone, Debug)]
enum Op {
    Allocate,
    /// Write to the i-th live page (mod live count) with given fill byte
    /// and length.
    Write(usize, u8, usize),
    /// Read the i-th live page and compare with the model.
    Read(usize),
    /// Free the i-th live page.
    Free(usize),
    Flush,
    SetCache(usize),
}

/// Weighted op distribution matching the old proptest strategy:
/// 2 allocate : 4 write : 4 read : 1 free : 1 flush : 1 cache-resize.
fn arb_op(rng: &mut SeededRng) -> Op {
    match rng.random_range(0..13) {
        0 | 1 => Op::Allocate,
        2..=5 => Op::Write(
            rng.random_range(0..usize::MAX),
            rng.random::<u8>(),
            rng.random_range(0..200),
        ),
        6..=9 => Op::Read(rng.random_range(0..usize::MAX)),
        10 => Op::Free(rng.random_range(0..usize::MAX)),
        11 => Op::Flush,
        _ => Op::SetCache(rng.random_range(0..8)),
    }
}

fn arb_ops(seed: u64, max_len: usize) -> Vec<Op> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let len = 1 + rng.random_range(0..max_len);
    (0..len).map(|_| arb_op(&mut rng)).collect()
}

#[test]
fn pagefile_matches_model() {
    for case in 0..64u64 {
        let seed = 0x9A6E_F055_u64 ^ case;
        let ops = arb_ops(seed, 120);
        let pf = PageFile::create_in_memory(512).unwrap();
        let mut model: HashMap<PageId, Vec<u8>> = HashMap::new();
        let mut live: Vec<PageId> = Vec::new();

        for op in ops {
            match op {
                Op::Allocate => {
                    let id = pf.allocate(PageKind::Leaf).unwrap();
                    assert!(
                        !model.contains_key(&id),
                        "SEED={seed}: allocated a live page twice"
                    );
                    model.insert(id, Vec::new());
                    live.push(id);
                }
                Op::Write(i, b, l) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[i % live.len()];
                    let payload = vec![b; l.min(pf.capacity())];
                    pf.write(id, PageKind::Leaf, &payload).unwrap();
                    model.insert(id, payload);
                }
                Op::Read(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[i % live.len()];
                    let got = pf.read(id, PageKind::Leaf).unwrap();
                    assert_eq!(&got, model.get(&id).unwrap(), "SEED={seed}");
                }
                Op::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = i % live.len();
                    let id = live.swap_remove(idx);
                    pf.free(id).unwrap();
                    model.remove(&id);
                }
                Op::Flush => pf.flush().unwrap(),
                Op::SetCache(n) => pf.set_cache_capacity(n).unwrap(),
            }
        }

        // Final sweep: every live page still reads back exactly.
        for &id in &live {
            let got = pf.read(id, PageKind::Leaf).unwrap();
            assert_eq!(&got, model.get(&id).unwrap(), "SEED={seed}");
        }
    }
}

/// The same traces must also survive persistence: run against a real
/// file, flush, reopen, and verify every live page.
#[test]
fn pagefile_trace_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("sr-pager-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for case in 0..32u64 {
        let seed = 0xF11E_5EED ^ case;
        let ops = arb_ops(seed, 60);
        let path = dir.join(format!("trace-{case}.pages"));
        let mut model: HashMap<PageId, Vec<u8>> = HashMap::new();
        let mut live: Vec<PageId> = Vec::new();
        {
            let pf = PageFile::create_with_page_size(&path, 512).unwrap();
            for op in ops {
                match op {
                    Op::Allocate => {
                        let id = pf.allocate(PageKind::Leaf).unwrap();
                        model.insert(id, Vec::new());
                        live.push(id);
                    }
                    Op::Write(i, b, l) => {
                        if live.is_empty() {
                            continue;
                        }
                        let id = live[i % live.len()];
                        let payload = vec![b; l.min(pf.capacity())];
                        pf.write(id, PageKind::Leaf, &payload).unwrap();
                        model.insert(id, payload);
                    }
                    Op::Free(i) => {
                        if live.is_empty() {
                            continue;
                        }
                        let idx = i % live.len();
                        let id = live.swap_remove(idx);
                        pf.free(id).unwrap();
                        model.remove(&id);
                    }
                    // reads/flushes/cache changes are irrelevant to what
                    // must persist
                    _ => {}
                }
            }
            pf.flush().unwrap();
        }
        let pf = PageFile::open(&path).unwrap();
        for &id in &live {
            let got = pf.read(id, PageKind::Leaf).unwrap();
            assert_eq!(&got, model.get(&id).unwrap(), "SEED={seed}");
        }
        drop(pf);
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}
