//! Property-based tests of the geometry kernel — the correctness of
//! every index structure rests on these identities.

use proptest::prelude::*;
use sr_geometry::{
    bounding_rect_of_points, bounding_sphere_of_points, dist2, enclosing_radius_rects,
    enclosing_radius_spheres, next_radius_up, Centroid, Point, Rect, Sphere,
};

fn arb_point(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1000.0f32..1000.0, dim..=dim)
}

fn arb_rect(dim: usize) -> impl Strategy<Value = Rect> {
    (arb_point(dim), arb_point(dim)).prop_map(|(a, b)| {
        let min: Vec<f32> = a.iter().zip(b.iter()).map(|(&x, &y)| x.min(y)).collect();
        let max: Vec<f32> = a.iter().zip(b.iter()).map(|(&x, &y)| x.max(y)).collect();
        Rect::new(min, max)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// MINDIST is a true lower bound: for any point q and any point p
    /// inside the rectangle, MINDIST(q, R) <= d(q, p).
    #[test]
    fn min_dist_lower_bounds_contained_points(
        r in arb_rect(4),
        q in arb_point(4),
        t in prop::collection::vec(0.0f64..=1.0, 4),
    ) {
        // p = interpolation inside the rect
        let p: Vec<f32> = (0..4)
            .map(|i| r.min()[i] + (r.max()[i] - r.min()[i]) * t[i] as f32)
            .collect();
        prop_assert!(r.contains_point(&p));
        prop_assert!(r.min_dist2(&q) <= dist2(&q, &p) + 1e-6);
    }

    /// MAXDIST is a true upper bound for every contained point.
    #[test]
    fn max_dist_upper_bounds_contained_points(
        r in arb_rect(4),
        q in arb_point(4),
        t in prop::collection::vec(0.0f64..=1.0, 4),
    ) {
        let p: Vec<f32> = (0..4)
            .map(|i| r.min()[i] + (r.max()[i] - r.min()[i]) * t[i] as f32)
            .collect();
        prop_assert!(r.max_dist2(&q) >= dist2(&q, &p) - 1e-3);
    }

    /// Union is commutative, covering, and minimal on the corners.
    #[test]
    fn union_properties(a in arb_rect(3), b in arb_rect(3)) {
        let u = a.union(&b);
        let v = b.union(&a);
        prop_assert_eq!(&u, &v);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        // minimality: each bound is realized by one of the inputs
        for i in 0..3 {
            prop_assert!(u.min()[i] == a.min()[i] || u.min()[i] == b.min()[i]);
            prop_assert!(u.max()[i] == a.max()[i] || u.max()[i] == b.max()[i]);
        }
    }

    /// Overlap volume is symmetric and bounded by each input's volume.
    #[test]
    fn overlap_symmetric_and_bounded(a in arb_rect(3), b in arb_rect(3)) {
        let ab = a.overlap_volume(&b);
        let ba = b.overlap_volume(&a);
        prop_assert!((ab - ba).abs() <= 1e-6 * ab.abs().max(1.0));
        prop_assert!(ab <= a.volume() + 1e-6);
        prop_assert!(ab <= b.volume() + 1e-6);
        prop_assert!(ab >= 0.0);
    }

    /// A bounding sphere of points contains them all.
    #[test]
    fn bounding_sphere_contains_points(
        pts in prop::collection::vec(arb_point(5), 1..40),
    ) {
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let s = bounding_sphere_of_points(&refs);
        for p in &refs {
            prop_assert!(s.contains_point(p, 0.0), "{p:?} outside {s:?}");
        }
    }

    /// A bounding rect of points contains them all and is minimal.
    #[test]
    fn bounding_rect_contains_points(
        pts in prop::collection::vec(arb_point(5), 1..40),
    ) {
        let r = bounding_rect_of_points(pts.iter().map(|p| p.as_slice()));
        for p in &pts {
            prop_assert!(r.contains_point(p));
        }
        // minimality: every face touches some point
        for i in 0..5 {
            prop_assert!(pts.iter().any(|p| p[i] == r.min()[i]));
            prop_assert!(pts.iter().any(|p| p[i] == r.max()[i]));
        }
    }

    /// The SS parent-radius rule d_s really covers child spheres; the
    /// rect rule d_r really covers child rect corners.
    #[test]
    fn enclosing_radii_cover(
        centers in prop::collection::vec(arb_point(3), 1..10),
        radii in prop::collection::vec(0.0f32..50.0, 10),
        t in prop::collection::vec(-1.0f64..=1.0, 3),
    ) {
        let mut c = Centroid::new(3);
        for ctr in &centers {
            c.add(ctr, 1);
        }
        let center = c.finish();
        let spheres: Vec<(&[f32], f32)> = centers
            .iter()
            .enumerate()
            .map(|(i, ctr)| (ctr.as_slice(), radii[i % radii.len()]))
            .collect();
        let d_s = enclosing_radius_spheres(&center, spheres.iter().copied());
        // any point of any child sphere is within d_s of the center
        for (ctr, r) in &spheres {
            let norm = (t.iter().map(|x| x * x).sum::<f64>()).sqrt().max(1e-12);
            let p: Vec<f32> = (0..3)
                .map(|i| ctr[i] + (*r as f64 * t[i] / norm) as f32)
                .collect();
            let s = Sphere::new(Point::new(ctr.to_vec()), *r);
            if s.contains_point(&p, 0.0) {
                prop_assert!(
                    dist2(center.coords(), &p).sqrt() <= d_s + 1e-3,
                    "point {p:?} beyond d_s {d_s}"
                );
            }
        }
        // and d_r covers every corner of every child rect
        let rects: Vec<Rect> = centers
            .iter()
            .enumerate()
            .map(|(i, ctr)| {
                let r = radii[i % radii.len()];
                Rect::new(
                    ctr.iter().map(|&x| x - r).collect::<Vec<f32>>(),
                    ctr.iter().map(|&x| x + r).collect::<Vec<f32>>(),
                )
            })
            .collect();
        let d_r = enclosing_radius_rects(&center, rects.iter());
        for rect in &rects {
            for corner_mask in 0..8u32 {
                let corner: Vec<f32> = (0..3)
                    .map(|i| {
                        if corner_mask & (1 << i) != 0 {
                            rect.max()[i]
                        } else {
                            rect.min()[i]
                        }
                    })
                    .collect();
                prop_assert!(dist2(center.coords(), &corner).sqrt() <= d_r + 1e-3);
            }
        }
    }

    /// next_radius_up never shrinks and adds at most one ulp.
    #[test]
    fn radius_roundup(r in 0.0f64..1e30) {
        let f = next_radius_up(r);
        prop_assert!(f as f64 >= r);
        if r > 0.0 {
            prop_assert!((f as f64 - r) / r < 1e-6);
        }
    }

    /// Sphere min/max distances bracket the distance to any point of the
    /// sphere itself.
    #[test]
    fn sphere_distance_bracket(
        c in arb_point(3),
        r in 0.0f32..100.0,
        q in arb_point(3),
        t in prop::collection::vec(-1.0f64..=1.0, 3),
    ) {
        let s = Sphere::new(Point::new(c.clone()), r);
        let norm = (t.iter().map(|x| x * x).sum::<f64>()).sqrt().max(1e-12);
        let p: Vec<f32> = (0..3)
            .map(|i| c[i] + (r as f64 * t[i] / norm) as f32)
            .collect();
        if s.contains_point(&p, 0.0) {
            let d = dist2(&q, &p);
            prop_assert!(s.min_dist2(&q) <= d + 1e-3);
            prop_assert!(s.max_dist2(&q) >= d - 1e-3);
        }
    }
}
