//! Geometry kernel for the SR-tree reproduction.
//!
//! This crate provides the vector, bounding-rectangle, and bounding-sphere
//! primitives shared by every index structure in the workspace, together
//! with the distance functions the nearest-neighbor search of
//! Roussopoulos, Kelley & Vincent (SIGMOD 1995) requires:
//!
//! * [`Rect::min_dist2`] — `MINDIST(p, R)`, the squared distance from a
//!   query point to the nearest face of a rectangle;
//! * [`Rect::max_dist2`] — `MAXDIST(p, R)`, the squared distance to the
//!   farthest vertex of a rectangle (the SR-tree radius rule of §4.2 of the
//!   paper uses it);
//! * [`Sphere::min_dist2`] — the squared distance to the surface of a
//!   bounding sphere, zero inside it.
//!
//! Coordinates are `f32` (the storage format the paper's 8 KiB page-size
//! arithmetic assumes); every accumulation runs in `f64` to keep centroids
//! and variances stable at high dimensionality. Volumes in high-dimensional
//! space routinely under- and overflow `f64`, so both rectangles and spheres
//! expose a **log-volume** alongside the linear volume.

#![forbid(unsafe_code)]

pub mod error;
pub mod kernel;
pub mod mbr;
pub mod rect;
pub mod sphere;
pub mod vector;

pub use error::GeometryError;
pub use kernel::{
    dist2_columnar, dist2_columnar_early_abandon, dist2_f64le, rect_min_dist2_f64le,
    sphere_min_dist2_f64le, EARLY_ABANDON_HEAD_DIMS,
};
pub use mbr::{
    bounding_rect_of_points, bounding_sphere_of_points, enclosing_radius_rects,
    enclosing_radius_spheres, next_radius_up, Centroid,
};
pub use rect::Rect;
pub use sphere::{Sphere, CONTAINMENT_EPS};
pub use vector::{dist, dist2, Point};

/// Widen a dimension count to `f64`.
///
/// Lives here (outside the srlint L2-audited distance-kernel files) so the
/// kernels themselves stay free of `as` casts; `u32::MAX` dimensions is far
/// beyond anything representable, so the conversion is always exact in
/// practice.
#[inline]
pub fn usize_to_f64(d: usize) -> f64 {
    d as f64
}

/// Natural logarithm of the volume of the unit ball in `d` dimensions:
/// `ln( pi^{d/2} / Gamma(d/2 + 1) )`.
///
/// Used to convert a bounding-sphere radius into a (log-)volume when
/// comparing region volumes across index structures (Figures 5, 6, 12, 13
/// of the paper).
pub fn ln_unit_ball_volume(d: usize) -> f64 {
    let half = d as f64 / 2.0;
    half * std::f64::consts::PI.ln() - ln_gamma(half + 1.0)
}

/// Natural logarithm of the Gamma function via the Lanczos approximation.
///
/// Accurate to ~1e-13 over the positive reals, which is far more than the
/// region-volume measurements need.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        #[allow(clippy::excessive_precision)]
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its accurate range.
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n+1) = n!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma(n as f64 + 1.0);
            assert!((got - f.ln()).abs() < 1e-10, "n={n}: {got} vs {}", f.ln());
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Gamma(1/2) = sqrt(pi)
        let got = ln_gamma(0.5);
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((got - want).abs() < 1e-10);
    }

    #[test]
    fn unit_ball_volumes_known_dimensions() {
        // V_1 = 2, V_2 = pi, V_3 = 4/3 pi.
        let cases = [
            (1, 2.0f64),
            (2, std::f64::consts::PI),
            (3, 4.0 / 3.0 * std::f64::consts::PI),
        ];
        for (d, v) in cases {
            let got = ln_unit_ball_volume(d);
            assert!((got - v.ln()).abs() < 1e-10, "d={d}");
        }
    }

    #[test]
    fn unit_ball_volume_shrinks_in_high_dimensions() {
        // The famous concentration effect: the unit ball's volume tends to
        // zero as d grows — the core geometric fact behind the paper's §3.
        assert!(ln_unit_ball_volume(16) < ln_unit_ball_volume(5));
        assert!(ln_unit_ball_volume(64) < ln_unit_ball_volume(16));
        assert!(ln_unit_ball_volume(64) < 0.0);
    }
}
