//! Bounding spheres.
//!
//! Spheres are the region shape of the SS-tree and one half of the
//! SR-tree's sphere∩rectangle regions. A sphere is stored as a center
//! point plus a radius — `D + 1` parameters against a rectangle's `2·D`,
//! which is exactly the fanout advantage §2.3 of the paper credits the
//! SS-tree with.

use crate::ln_unit_ball_volume;
use crate::rect::Rect;
use crate::vector::{dist2, Point};

/// Radius tolerance for sphere-containment descents over *stored* points.
///
/// The same value the structural verifiers accept: large enough to absorb
/// the f32 rounding of centroid/radius maintenance, small enough to keep
/// the sphere test a useful filter during `contains`/`delete` walks.
pub const CONTAINMENT_EPS: f64 = 1e-5;

/// A bounding sphere: center + radius.
#[derive(Clone, Debug, PartialEq)]
pub struct Sphere {
    center: Point,
    radius: f32,
}

impl Sphere {
    /// Build a sphere from center and radius.
    ///
    /// # Panics
    /// Panics if the radius is negative or not finite.
    pub fn new(center: Point, radius: f32) -> Self {
        // srlint: allow(assert) -- documented contract panic; the tree
        // decode paths validate radius finiteness before construction, so
        // untrusted page bytes cannot reach this assert.
        assert!(
            radius.is_finite() && radius >= 0.0,
            "sphere radius must be finite and non-negative, got {radius}"
        );
        Sphere { center, radius }
    }

    /// The degenerate sphere covering exactly one point.
    pub fn from_point(p: &Point) -> Self {
        Sphere {
            center: p.clone(),
            radius: 0.0,
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.center.dim()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> &Point {
        &self.center
    }

    /// Radius.
    #[inline]
    pub fn radius(&self) -> f32 {
        self.radius
    }

    /// Diameter (`2·r`) — the region "diameter" the paper measures for
    /// sphere regions in Figures 5, 12, 13.
    #[inline]
    pub fn diameter(&self) -> f64 {
        2.0 * f64::from(self.radius)
    }

    /// Whether point `p` lies inside the sphere, with a relative tolerance
    /// `eps` on the radius (floating-point centroids make exact containment
    /// too strict for verification work; pass `0.0` for exact checks).
    ///
    /// Descents that must find every *stored* point (`contains`, `delete`)
    /// use [`CONTAINMENT_EPS`]: centroid/radius updates round in f32, so a
    /// live entry can sit a few ulps outside its recomputed bounding
    /// sphere, and an exact test would silently skip the only subtree
    /// that holds it.
    pub fn contains_point(&self, p: &[f32], eps: f64) -> bool {
        let r = f64::from(self.radius) * (1.0 + eps) + eps;
        dist2(self.center.coords(), p) <= r * r
    }

    /// Squared distance from `p` to the sphere surface, `0` inside.
    ///
    /// This is the sphere distance of the SS-tree's k-NN search and the
    /// `d_s` term of the SR-tree's region distance (paper §4.4):
    /// `d_s = max(0, ||p − center|| − r)`.
    #[inline]
    pub fn min_dist2(&self, p: &[f32]) -> f64 {
        let d = dist2(self.center.coords(), p).sqrt() - f64::from(self.radius);
        if d <= 0.0 {
            0.0
        } else {
            d * d
        }
    }

    /// Squared distance from `p` to the farthest point of the sphere:
    /// `(||p − center|| + r)^2`.
    #[inline]
    pub fn max_dist2(&self, p: &[f32]) -> f64 {
        let d = dist2(self.center.coords(), p).sqrt() + f64::from(self.radius);
        d * d
    }

    /// Whether the two spheres intersect (touching counts).
    pub fn intersects(&self, other: &Sphere) -> bool {
        let d = self.center.dist(&other.center);
        d <= f64::from(self.radius) + f64::from(other.radius)
    }

    /// Whether `other` lies entirely inside `self`, with relative tolerance
    /// `eps` on the radius.
    pub fn contains_sphere(&self, other: &Sphere, eps: f64) -> bool {
        let d = self.center.dist(&other.center);
        d + f64::from(other.radius) <= f64::from(self.radius) * (1.0 + eps) + eps
    }

    /// Whether the sphere and a rectangle intersect: true iff
    /// `MINDIST(center, R) <= r`.
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        rect.min_dist2(self.center.coords()) <= f64::from(self.radius) * f64::from(self.radius)
    }

    /// Volume of the ball. Underflows/overflows for extreme radii and
    /// dimensions — prefer [`Sphere::ln_volume`] for measurement.
    pub fn volume(&self) -> f64 {
        self.ln_volume().exp()
    }

    /// Natural log of the ball volume:
    /// `ln V_d + d·ln r`; `-inf` for radius zero.
    pub fn ln_volume(&self) -> f64 {
        ln_unit_ball_volume(self.dim())
            + crate::usize_to_f64(self.dim()) * f64::from(self.radius).ln()
    }

    /// The smallest axis-aligned rectangle enclosing the sphere.
    pub fn bounding_rect(&self) -> Rect {
        let min: Vec<f32> = self.center.iter().map(|&c| c - self.radius).collect();
        let max: Vec<f32> = self.center.iter().map(|&c| c + self.radius).collect();
        Rect::new(min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(center: &[f32], r: f32) -> Sphere {
        Sphere::new(Point::new(center.to_vec()), r)
    }

    #[test]
    fn containment_with_tolerance() {
        let a = s(&[0.0, 0.0], 1.0);
        assert!(a.contains_point(&[0.5, 0.5], 0.0));
        assert!(a.contains_point(&[1.0, 0.0], 0.0)); // surface inclusive
        assert!(!a.contains_point(&[1.1, 0.0], 0.0));
        assert!(a.contains_point(&[1.05, 0.0], 0.1)); // within tolerance
    }

    /// Regression for the contains/delete descent bug: a stored point
    /// can drift a few f32 ulps outside its ancestor's rebuilt sphere.
    /// The exact test rejects such a point (that was the bug — the only
    /// subtree holding the entry was skipped); the `CONTAINMENT_EPS`
    /// test must accept it.
    #[test]
    fn boundary_point_ulps_outside_is_accepted_with_eps() {
        let radius = 0.25f32;
        let a = s(&[0.5, 0.5, 0.5, 0.5], radius);
        // One-ulp and several-ulp drift past the surface along an axis.
        for ulps in 1..=8u32 {
            let drifted = f32::from_bits((0.5f32 + radius).to_bits() + ulps);
            let p = [drifted, 0.5, 0.5, 0.5];
            assert!(
                !a.contains_point(&p, 0.0),
                "{ulps} ulps outside: exact test rejects (the old bug)"
            );
            assert!(
                a.contains_point(&p, CONTAINMENT_EPS),
                "{ulps} ulps outside: tolerant test must accept"
            );
        }
        // The tolerance is tight: a point clearly outside stays outside.
        assert!(!a.contains_point(&[0.5 + radius * 1.01, 0.5, 0.5, 0.5], CONTAINMENT_EPS));
    }

    #[test]
    fn min_dist2_inside_is_zero() {
        let a = s(&[0.0, 0.0], 2.0);
        assert_eq!(a.min_dist2(&[1.0, 1.0]), 0.0);
        assert_eq!(a.min_dist2(&[2.0, 0.0]), 0.0);
    }

    #[test]
    fn min_dist2_outside() {
        let a = s(&[0.0, 0.0], 1.0);
        assert!((a.min_dist2(&[3.0, 0.0]) - 4.0).abs() < 1e-9);
        assert!((a.min_dist2(&[3.0, 4.0]) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn max_dist2_is_far_side() {
        let a = s(&[0.0], 1.0);
        assert!((a.max_dist2(&[3.0]) - 16.0).abs() < 1e-9);
        assert!((a.max_dist2(&[0.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_le_max_dist() {
        let a = s(&[1.0, -2.0, 0.5], 0.75);
        for p in [[0.0f32, 0.0, 0.0], [5.0, 5.0, 5.0], [1.0, -2.0, 0.5]] {
            assert!(a.min_dist2(&p) <= a.max_dist2(&p));
        }
    }

    #[test]
    fn sphere_sphere_relations() {
        let a = s(&[0.0, 0.0], 2.0);
        let b = s(&[1.0, 0.0], 0.5);
        let c = s(&[5.0, 0.0], 1.0);
        let d = s(&[3.0, 0.0], 1.0); // touching a
        assert!(a.contains_sphere(&b, 0.0));
        assert!(!a.contains_sphere(&c, 0.0));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&d));
        assert!(a.intersects(&b));
    }

    #[test]
    fn rect_intersection() {
        let a = s(&[0.0, 0.0], 1.0);
        assert!(a.intersects_rect(&Rect::new(vec![0.5, 0.5], vec![2.0, 2.0])));
        assert!(!a.intersects_rect(&Rect::new(vec![2.0, 2.0], vec![3.0, 3.0])));
        // corner exactly touching the surface: nearest corner is (1, 0)
        assert!(a.intersects_rect(&Rect::new(vec![1.0, 0.0], vec![2.0, 2.0])));
    }

    #[test]
    fn volume_matches_closed_forms() {
        let a = s(&[0.0, 0.0], 2.0);
        let want = std::f64::consts::PI * 4.0; // pi r^2
        assert!((a.volume() - want).abs() < 1e-9);
        let b = s(&[0.0, 0.0, 0.0], 1.5);
        let want3 = 4.0 / 3.0 * std::f64::consts::PI * 1.5f64.powi(3);
        assert!((b.volume() - want3).abs() < 1e-9);
    }

    #[test]
    fn ln_volume_handles_high_dimension() {
        let d = 64;
        let a = Sphere::new(Point::zeros(d), 0.01);
        assert!(a.ln_volume().is_finite());
        assert!(a.ln_volume() < 0.0);
    }

    #[test]
    fn bounding_rect_encloses_sphere() {
        let a = s(&[1.0, -1.0], 0.5);
        let r = a.bounding_rect();
        assert_eq!(r.min(), &[0.5, -1.5]);
        assert_eq!(r.max(), &[1.5, -0.5]);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn negative_radius_rejected() {
        let _ = s(&[0.0], -1.0);
    }
}
