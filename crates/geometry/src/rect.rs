//! Axis-aligned bounding rectangles (hyper-rectangles).
//!
//! Rectangles are the region shape of the R\*-tree and the K-D-B-tree, and
//! one half of the SR-tree's sphere∩rectangle regions. Besides the usual
//! union/area/margin operations the R\*-split needs, this module implements
//! the two distance functions of Roussopoulos et al.:
//! `MINDIST` ([`Rect::min_dist2`]) and the farthest-vertex distance
//! ([`Rect::max_dist2`]) that the SR-tree's bounding-sphere radius rule
//! (paper §4.2, the `MAXDIST` term of `d_r`) relies on.

use crate::vector::Point;

/// An axis-aligned hyper-rectangle, stored as per-dimension `[min, max]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    min: Box<[f32]>,
    max: Box<[f32]>,
}

impl Rect {
    /// Build a rectangle from per-dimension bounds.
    ///
    /// # Panics
    /// Panics if the slices differ in length, are empty, or if any
    /// `min > max`.
    pub fn new(min: impl Into<Box<[f32]>>, max: impl Into<Box<[f32]>>) -> Self {
        let (min, max) = (min.into(), max.into());
        // srlint: allow(assert) -- documented contract panic; decode
        // paths read both bounds with the same `dim`, so lengths match
        // by construction.
        assert_eq!(min.len(), max.len(), "bound slices must match in length");
        // srlint: allow(assert) -- same constructor contract.
        assert!(
            !min.is_empty(),
            "rectangles must have at least one dimension"
        );
        for (i, (&lo, &hi)) in min.iter().zip(max.iter()).enumerate() {
            // srlint: allow(assert) -- decode paths reject inverted
            // rectangles with a typed error before construction.
            assert!(lo <= hi, "dimension {i}: min {lo} > max {hi}");
        }
        Rect { min, max }
    }

    /// The degenerate rectangle covering exactly one point.
    pub fn from_point(p: &Point) -> Self {
        Rect {
            min: p.coords().into(),
            max: p.coords().into(),
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Lower bounds per dimension.
    #[inline]
    pub fn min(&self) -> &[f32] {
        &self.min
    }

    /// Upper bounds per dimension.
    #[inline]
    pub fn max(&self) -> &[f32] {
        &self.max
    }

    /// Extent along dimension `i` (`max - min`); `0.0` for an
    /// out-of-range dimension.
    #[inline]
    pub fn extent(&self, i: usize) -> f32 {
        debug_assert!(
            i < self.dim(),
            "extent of dimension {i} in {}-d",
            self.dim()
        );
        match (self.min.get(i), self.max.get(i)) {
            (Some(&lo), Some(&hi)) => hi - lo,
            _ => 0.0,
        }
    }

    /// The center point of the rectangle.
    pub fn center(&self) -> Point {
        let coords: Vec<f32> = self
            .min
            .iter()
            .zip(self.max.iter())
            .map(|(&lo, &hi)| lo + (hi - lo) * 0.5)
            .collect();
        Point::new(coords)
    }

    /// Whether the rectangle contains point `p` (boundary inclusive).
    pub fn contains_point(&self, p: &[f32]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        self.min
            .iter()
            .zip(self.max.iter())
            .zip(p.iter())
            .all(|((&lo, &hi), &x)| lo <= x && x <= hi)
    }

    /// Whether `other` lies entirely inside `self` (boundary inclusive).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.min.iter().zip(other.min.iter()).all(|(&a, &b)| a <= b)
            && other.max.iter().zip(self.max.iter()).all(|(&a, &b)| a <= b)
    }

    /// Whether the two rectangles intersect (boundary touching counts).
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.min.iter().zip(other.max.iter()).all(|(&a, &b)| a <= b)
            && other.min.iter().zip(self.max.iter()).all(|(&a, &b)| a <= b)
    }

    /// Smallest rectangle containing both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dim(), other.dim());
        let min: Vec<f32> = self
            .min
            .iter()
            .zip(other.min.iter())
            .map(|(&a, &b)| a.min(b))
            .collect();
        let max: Vec<f32> = self
            .max
            .iter()
            .zip(other.max.iter())
            .map(|(&a, &b)| a.max(b))
            .collect();
        Rect {
            min: min.into(),
            max: max.into(),
        }
    }

    /// Grow `self` in place to cover `p`.
    pub fn expand_to_point(&mut self, p: &[f32]) {
        debug_assert_eq!(p.len(), self.dim());
        for (lo, &x) in self.min.iter_mut().zip(p.iter()) {
            *lo = lo.min(x);
        }
        for (hi, &x) in self.max.iter_mut().zip(p.iter()) {
            *hi = hi.max(x);
        }
    }

    /// Grow `self` in place to cover `other`.
    pub fn expand_to_rect(&mut self, other: &Rect) {
        debug_assert_eq!(self.dim(), other.dim());
        for (lo, &x) in self.min.iter_mut().zip(other.min.iter()) {
            *lo = lo.min(x);
        }
        for (hi, &x) in self.max.iter_mut().zip(other.max.iter()) {
            *hi = hi.max(x);
        }
    }

    /// Volume (area in 2-D). Underflows to `0.0` for tiny high-D
    /// rectangles — use [`Rect::ln_volume`] for measurement work.
    pub fn volume(&self) -> f64 {
        self.min
            .iter()
            .zip(self.max.iter())
            .map(|(&lo, &hi)| f64::from(hi - lo))
            .product()
    }

    /// Natural logarithm of the volume; `-inf` if any extent is zero.
    pub fn ln_volume(&self) -> f64 {
        self.min
            .iter()
            .zip(self.max.iter())
            .map(|(&lo, &hi)| f64::from(hi - lo).ln())
            .sum()
    }

    /// Sum of edge lengths over all dimensions (the "margin" of the
    /// R\*-tree split heuristic; half the perimeter in 2-D).
    pub fn margin(&self) -> f64 {
        self.min
            .iter()
            .zip(self.max.iter())
            .map(|(&lo, &hi)| f64::from(hi - lo))
            .sum()
    }

    /// Length of the main diagonal — the "diameter" the paper measures for
    /// rectangle regions (§3.2: the diagonal of a D-dimensional unit cube is
    /// `sqrt(D)` even though every edge is 1).
    pub fn diagonal(&self) -> f64 {
        self.min
            .iter()
            .zip(self.max.iter())
            .map(|(&lo, &hi)| {
                let e = f64::from(hi - lo);
                e * e
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Volume of the intersection with `other`, `0.0` if disjoint.
    pub fn overlap_volume(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        let mut v = 1.0f64;
        for ((&slo, &shi), (&olo, &ohi)) in self
            .min
            .iter()
            .zip(self.max.iter())
            .zip(other.min.iter().zip(other.max.iter()))
        {
            let lo = slo.max(olo);
            let hi = shi.min(ohi);
            if hi <= lo {
                return 0.0;
            }
            v *= f64::from(hi - lo);
        }
        v
    }

    /// Increase in volume if `self` were enlarged to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// `MINDIST(p, R)^2`: squared distance from `p` to the nearest point of
    /// the rectangle; `0` when `p` is inside.
    ///
    /// This is the rectangle distance of the Roussopoulos et al. k-NN
    /// search and of the SR-tree's region distance `d_r` (paper §4.4).
    #[inline]
    pub fn min_dist2(&self, p: &[f32]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let mut acc = 0.0f64;
        for ((&lo, &hi), &x) in self.min.iter().zip(self.max.iter()).zip(p.iter()) {
            let d = if x < lo {
                f64::from(lo) - f64::from(x)
            } else if x > hi {
                f64::from(x) - f64::from(hi)
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// `MAXDIST(p, R)^2`: squared distance from `p` to the farthest vertex
    /// of the rectangle.
    ///
    /// The paper (§4.2) computes it "by pursuing such a vertex of the
    /// rectangle R that is the farthest from the point p" — per dimension,
    /// the farther of the two bounds.
    #[inline]
    pub fn max_dist2(&self, p: &[f32]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let mut acc = 0.0f64;
        for ((&lo, &hi), &xp) in self.min.iter().zip(self.max.iter()).zip(p.iter()) {
            let x = f64::from(xp);
            let dlo = (x - f64::from(lo)).abs();
            let dhi = (x - f64::from(hi)).abs();
            let d = dlo.max(dhi);
            acc += d * d;
        }
        acc
    }

    /// Squared distance between the nearest points of two rectangles
    /// (`0` when they intersect). Used by spatial-join-style pruning and by
    /// the structural verifiers.
    pub fn rect_min_dist2(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        let mut acc = 0.0f64;
        for ((&slo, &shi), (&olo, &ohi)) in self
            .min
            .iter()
            .zip(self.max.iter())
            .zip(other.min.iter().zip(other.max.iter()))
        {
            let d = if ohi < slo {
                f64::from(slo) - f64::from(ohi)
            } else if olo > shi {
                f64::from(olo) - f64::from(shi)
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(min: &[f32], max: &[f32]) -> Rect {
        Rect::new(min.to_vec(), max.to_vec())
    }

    #[test]
    fn basic_accessors() {
        let a = r(&[0.0, 1.0], &[2.0, 3.0]);
        assert_eq!(a.dim(), 2);
        assert_eq!(a.extent(0), 2.0);
        assert_eq!(a.extent(1), 2.0);
        assert_eq!(a.center().coords(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "min")]
    fn inverted_bounds_rejected() {
        let _ = r(&[1.0], &[0.0]);
    }

    #[test]
    fn containment_and_intersection() {
        let outer = r(&[0.0, 0.0], &[10.0, 10.0]);
        let inner = r(&[2.0, 2.0], &[3.0, 3.0]);
        let crossing = r(&[9.0, 9.0], &[12.0, 12.0]);
        let outside = r(&[20.0, 20.0], &[21.0, 21.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.intersects(&crossing));
        assert!(!outer.intersects(&outside));
        assert!(outer.contains_point(&[0.0, 10.0])); // boundary inclusive
        assert!(!outer.contains_point(&[10.1, 5.0]));
    }

    #[test]
    fn union_covers_both() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[2.0, -1.0], &[3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(&[0.0, -1.0], &[3.0, 1.0]));
    }

    #[test]
    fn expand_matches_union() {
        let mut a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[-1.0, 0.5], &[0.5, 2.0]);
        let u = a.union(&b);
        a.expand_to_rect(&b);
        assert_eq!(a, u);

        let mut c = r(&[0.0], &[1.0]);
        c.expand_to_point(&[5.0]);
        assert_eq!(c, r(&[0.0], &[5.0]));
    }

    #[test]
    fn volume_margin_diagonal() {
        let a = r(&[0.0, 0.0, 0.0], &[1.0, 2.0, 3.0]);
        assert_eq!(a.volume(), 6.0);
        assert_eq!(a.margin(), 6.0);
        assert!((a.diagonal() - 14f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ln_volume_consistent_with_volume() {
        let a = r(&[0.0, 0.0], &[0.5, 0.25]);
        assert!((a.ln_volume() - a.volume().ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_volume_survives_underflow() {
        // 64 dimensions of extent 1e-6: linear volume is 1e-384, which
        // underflows f64 to zero; ln-volume must stay finite.
        let d = 64;
        let a = Rect::new(vec![0.0f32; d], vec![1e-6f32; d]);
        assert_eq!(a.volume(), 0.0);
        let want = 64.0 * (1e-6f32 as f64).ln();
        assert!((a.ln_volume() - want).abs() < 1e-6);
    }

    #[test]
    fn unit_cube_diagonal_is_sqrt_d() {
        // The §3.2 observation driving the whole paper.
        for d in [2usize, 16, 64] {
            let c = Rect::new(vec![0.0f32; d], vec![1.0f32; d]);
            assert!((c.diagonal() - (d as f64).sqrt()).abs() < 1e-9);
        }
    }

    #[test]
    fn overlap_volume_cases() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        let b = r(&[1.0, 1.0], &[3.0, 3.0]);
        let c = r(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(a.overlap_volume(&b), 1.0);
        assert_eq!(a.overlap_volume(&c), 0.0);
        // touching edges have zero overlap volume
        let d = r(&[2.0, 0.0], &[3.0, 2.0]);
        assert_eq!(a.overlap_volume(&d), 0.0);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = r(&[0.0, 0.0], &[4.0, 4.0]);
        let b = r(&[1.0, 1.0], &[2.0, 2.0]);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn min_dist2_inside_outside_corner() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(a.min_dist2(&[0.5, 0.5]), 0.0);
        assert_eq!(a.min_dist2(&[2.0, 0.5]), 1.0); // face distance
        assert_eq!(a.min_dist2(&[2.0, 2.0]), 2.0); // corner distance
        assert_eq!(a.min_dist2(&[-3.0, 0.5]), 9.0);
    }

    #[test]
    fn max_dist2_is_farthest_vertex() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        // From the origin corner the farthest vertex is (1,1).
        assert_eq!(a.max_dist2(&[0.0, 0.0]), 2.0);
        // From the center, every vertex is equally far.
        assert_eq!(a.max_dist2(&[0.5, 0.5]), 0.5);
        // From far outside, the far corner dominates.
        assert_eq!(a.max_dist2(&[-1.0, 0.0]), 4.0 + 1.0);
    }

    #[test]
    fn min_le_max_dist_always() {
        let a = r(&[-1.0, 2.0, 0.0], &[1.0, 5.0, 0.5]);
        for p in [
            [0.0f32, 0.0, 0.0],
            [10.0, 10.0, 10.0],
            [0.0, 3.0, 0.25],
            [-5.0, 2.0, 0.5],
        ] {
            assert!(a.min_dist2(&p) <= a.max_dist2(&p), "p={p:?}");
        }
    }

    #[test]
    fn rect_min_dist2_cases() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[3.0, 0.0], &[4.0, 1.0]);
        assert_eq!(a.rect_min_dist2(&b), 4.0);
        let c = r(&[0.5, 0.5], &[2.0, 2.0]);
        assert_eq!(a.rect_min_dist2(&c), 0.0);
        let d = r(&[2.0, 3.0], &[3.0, 4.0]);
        assert_eq!(a.rect_min_dist2(&d), 1.0 + 4.0);
    }

    #[test]
    fn from_point_is_degenerate() {
        let p = Point::new(vec![1.0, 2.0]);
        let a = Rect::from_point(&p);
        assert_eq!(a.volume(), 0.0);
        assert!(a.contains_point(p.coords()));
        assert_eq!(a.min_dist2(p.coords()), 0.0);
    }
}
