//! Typed errors for the geometry crate.
//!
//! The geometry crate is panic-free library code under the workspace's L1
//! discipline: every fallible construction or byte-level kernel returns a
//! [`GeometryError`] instead of asserting. The explicitly documented
//! exception is [`Point::new`](crate::Point::new), whose contract panic is
//! hatched at the definition — callers holding untrusted input use
//! [`Point::try_new`](crate::Point::try_new).

use std::fmt;

/// Errors from checked geometry constructors and byte-level kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeometryError {
    /// A zero-dimensional point was supplied; every algorithm in the
    /// workspace requires at least one coordinate.
    ZeroDim,
    /// A columnar coordinate block's byte length disagrees with the
    /// claimed entry count and dimensionality.
    Layout {
        /// Bytes the (count, dim) pair implies.
        expected: usize,
        /// Bytes actually supplied.
        actual: usize,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::ZeroDim => {
                write!(f, "points must have at least one dimension")
            }
            GeometryError::Layout { expected, actual } => write!(
                f,
                "columnar block layout mismatch: expected {expected} bytes, got {actual}"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}
