//! Columnar (structure-of-arrays) distance kernels.
//!
//! Leaf pages store coordinates **dimension-major**: every entry's
//! dimension-0 value first, then every entry's dimension-1 value, and so
//! on — each value an `f64` in little-endian byte order, exactly the
//! widened form the page codec's `put_coords` writes. The kernels here
//! score a query against such a block straight from the page buffer,
//! without materialising a per-entry `Point`, and with inner loops that
//! run over fixed-width `[u8; 8]` lanes so rustc can autovectorize them.
//!
//! # Accumulation-order contract
//!
//! [`dist2`](crate::dist2) is the canonical distance: a single `f64`
//! accumulator updated once per dimension, in ascending dimension order.
//! The columnar kernels vectorize **across points, not across
//! dimensions** — the outer loop walks dimensions in ascending order and
//! updates every point's private accumulator once per iteration — so each
//! point's sum is evaluated in exactly the canonical order and the result
//! is bit-identical to the scalar path and to the brute-force oracle.
//! Reassociating the per-point sum (chunking dimensions into partial
//! sums) would drift near-tied neighbor sets; see the kernel-equivalence
//! suite in `tests/kernel_equivalence.rs`.
//!
//! # Early abandon
//!
//! [`dist2_columnar_early_abandon`] stops scoring a point once its
//! partial sum **strictly exceeds** the caller's threshold (the running
//! k-th candidate distance, or a range query's squared radius). Strict
//! comparison matters: the candidate set breaks distance ties toward the
//! smaller data id, so a point that exactly ties the k-th distance must
//! still be scored to completion. Partial sums of squares are
//! monotonically non-decreasing in `f64` (each term is non-negative and
//! rounding is monotone), so a strict overshoot at any prefix proves the
//! full distance also exceeds the threshold. No comparison against
//! `+inf` ever abandons, and a NaN partial compares false, so a NaN that
//! reaches the accumulator completes to the same NaN total as the scalar
//! path. (A NaN in a dimension the scan never reaches — because a finite
//! prefix already overshot — can still be abandoned; the engines
//! validate coordinates on insert, so that case only arises from page
//! corruption.)

use crate::error::GeometryError;

/// Leading dimensions scored columnar for every point before the first
/// early-abandon check; past this prefix, survivors are finished one
/// point at a time with a check before every further dimension.
pub const EARLY_ABANDON_HEAD_DIMS: usize = 8;

/// Iterate a row-major f64-LE slice as `f64` values, bounds-check-free.
#[inline]
fn f64le_lanes(bytes: &[u8]) -> impl Iterator<Item = f64> + '_ {
    let (lanes, _tail) = bytes.as_chunks::<8>();
    lanes.iter().map(|l| f64::from_le_bytes(*l))
}

/// Validate that `bytes` holds exactly `dim` f64-LE values.
#[inline]
fn check_row(bytes: &[u8], dim: usize) -> Result<(), GeometryError> {
    let expected = dim.checked_mul(8).ok_or(GeometryError::Layout {
        expected: usize::MAX,
        actual: bytes.len(),
    })?;
    if bytes.len() != expected {
        return Err(GeometryError::Layout {
            expected,
            actual: bytes.len(),
        });
    }
    Ok(())
}

/// Squared Euclidean distance from `query` to one row-major f64-LE point
/// (an inner-node entry's sphere center as the node codec stores it),
/// bit-identical to [`dist2`](crate::dist2) of the narrowed coordinates.
///
/// Every stored `f64` is the exact widening of an in-memory `f32`, so
/// subtracting the raw value equals widening the decoded `f32` — this is
/// what lets the query path skip materialising entries entirely.
// srlint: hot
pub fn dist2_f64le(point: &[u8], query: &[f32]) -> Result<f64, GeometryError> {
    check_row(point, query.len())?;
    let mut acc = 0.0f64;
    for (c, q) in f64le_lanes(point).zip(query.iter()) {
        let d = c - f64::from(*q);
        acc += d * d;
    }
    Ok(acc)
}

/// `d_s²`: squared distance from `query` to the surface of a bounding
/// sphere stored raw (`center` as row-major f64-LE, `radius` as the
/// stored f64), zero inside — bit-identical to
/// [`Sphere::min_dist2`](crate::Sphere::min_dist2) of the decoded sphere.
// srlint: hot
pub fn sphere_min_dist2_f64le(
    center: &[u8],
    radius: f64,
    query: &[f32],
) -> Result<f64, GeometryError> {
    let d = dist2_f64le(center, query)?.sqrt() - radius;
    Ok(if d <= 0.0 { 0.0 } else { d * d })
}

/// `MINDIST²`: squared distance from `query` to a bounding rectangle
/// stored raw (`lo`/`hi` as row-major f64-LE) — bit-identical to
/// [`Rect::min_dist2`](crate::Rect::min_dist2) of the decoded rectangle.
///
/// The in-memory form compares in `f32` and widens per term; widening is
/// exact and order-preserving, so comparing against the stored `f64`
/// image is the same predicate and the same arithmetic.
// srlint: hot
pub fn rect_min_dist2_f64le(lo: &[u8], hi: &[u8], query: &[f32]) -> Result<f64, GeometryError> {
    check_row(lo, query.len())?;
    check_row(hi, query.len())?;
    let mut acc = 0.0f64;
    for ((l, h), x) in f64le_lanes(lo).zip(f64le_lanes(hi)).zip(query.iter()) {
        let x = f64::from(*x);
        let d = if x < l {
            l - x
        } else if x > h {
            x - h
        } else {
            0.0
        };
        acc += d * d;
    }
    Ok(acc)
}

/// Validate that `coords` holds exactly `n * dim` f64-LE values.
#[inline]
fn check_layout(coords: &[u8], n: usize, dim: usize) -> Result<(), GeometryError> {
    let expected =
        n.checked_mul(dim)
            .and_then(|v| v.checked_mul(8))
            .ok_or(GeometryError::Layout {
                expected: usize::MAX,
                actual: coords.len(),
            })?;
    if coords.len() != expected {
        return Err(GeometryError::Layout {
            expected,
            actual: coords.len(),
        });
    }
    Ok(())
}

/// Accumulate one dimension's column into every point's partial sum:
/// `acc[i] += (col[i] - q)^2`. The lane iterator is bounds-check-free;
/// on little-endian targets `f64::from_le_bytes` is a plain load and the
/// loop autovectorizes.
#[inline]
fn accumulate_column(acc: &mut [f64], col: &[u8], q: f64) {
    let (lanes, _tail) = col.as_chunks::<8>();
    for (a, lane) in acc.iter_mut().zip(lanes.iter()) {
        let d = f64::from_le_bytes(*lane) - q;
        *a += d * d;
    }
}

/// Squared Euclidean distance from `query` to each of `n` points stored
/// as a dimension-major f64-LE block.
///
/// On success `out` holds exactly `n` distances, `out[i]` belonging to
/// the block's `i`-th point, each bit-identical to
/// [`dist2`](crate::dist2) of the materialised entry.
// srlint: hot
pub fn dist2_columnar(
    coords: &[u8],
    n: usize,
    query: &[f32],
    out: &mut Vec<f64>,
) -> Result<(), GeometryError> {
    check_layout(coords, n, query.len())?;
    out.clear();
    out.resize(n, 0.0);
    if n == 0 {
        return Ok(());
    }
    for (qd, col) in query.iter().zip(coords.chunks_exact(n * 8)) {
        accumulate_column(out, col, f64::from(*qd));
    }
    Ok(())
}

/// Early-abandoning variant of [`dist2_columnar`].
///
/// Scores the first [`EARLY_ABANDON_HEAD_DIMS`] dimensions columnar for
/// every point, then finishes each point individually, abandoning as soon
/// as its partial sum strictly exceeds `threshold`. Returns the number of
/// abandoned points. After the call, `alive[i]` is `true` iff point `i`
/// survived, in which case `out[i]` is its full squared distance
/// (bit-identical to the scalar path); for abandoned points `out[i]` is a
/// partial sum, already `> threshold`, and must not be used as a
/// distance.
///
/// Pass `threshold = f64::INFINITY` to disable abandonment, in which case
/// the results equal [`dist2_columnar`]'s exactly.
// srlint: hot
pub fn dist2_columnar_early_abandon(
    coords: &[u8],
    n: usize,
    query: &[f32],
    threshold: f64,
    out: &mut Vec<f64>,
    alive: &mut Vec<bool>,
) -> Result<u64, GeometryError> {
    let dim = query.len();
    check_layout(coords, n, dim)?;
    out.clear();
    out.resize(n, 0.0);
    alive.clear();
    alive.resize(n, true);
    if n == 0 {
        return Ok(0);
    }
    let head = dim.min(EARLY_ABANDON_HEAD_DIMS);
    for (qd, col) in query.iter().take(head).zip(coords.chunks_exact(n * 8)) {
        accumulate_column(out, col, f64::from(*qd));
    }
    if head == dim {
        return Ok(0);
    }
    let mut abandoned = 0u64;
    for (i, (acc, live)) in out.iter_mut().zip(alive.iter_mut()).enumerate() {
        for (d, qd) in query.iter().enumerate().skip(head) {
            // Strictly-greater: a tie with the k-th candidate can still
            // win the candidate set's data-id tie-break, and a NaN
            // partial compares false, so NaN totals match the scalar
            // path. A partial overshoot is final: later terms are
            // non-negative and f64 addition of non-negatives is
            // monotone, so the full sum can only be larger.
            if *acc > threshold {
                *live = false;
                abandoned += 1;
                break;
            }
            let off = (d * n + i) * 8;
            let lane = coords.get(off..).and_then(|s| s.first_chunk::<8>()).ok_or(
                GeometryError::Layout {
                    expected: n * dim * 8,
                    actual: coords.len(),
                },
            )?;
            let dq = f64::from_le_bytes(*lane) - f64::from(*qd);
            *acc += dq * dq;
        }
    }
    Ok(abandoned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist2;

    /// Build a dimension-major f64-LE block from row-major points.
    fn columnar(points: &[Vec<f32>], dim: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for d in 0..dim {
            for p in points {
                out.extend_from_slice(&f64::from(p[d]).to_le_bytes());
            }
        }
        out
    }

    #[test]
    fn columnar_matches_scalar_bitwise() {
        let points = vec![
            vec![0.25f32, -1.5, 7.0],
            vec![1e-3, 1e3, -0.0],
            vec![3.0, 4.0, 5.0],
        ];
        let q = [0.1f32, 0.2, 0.3];
        let block = columnar(&points, 3);
        let mut out = Vec::new();
        dist2_columnar(&block, 3, &q, &mut out).unwrap();
        for (p, got) in points.iter().zip(&out) {
            assert_eq!(got.to_bits(), dist2(p, &q).to_bits());
        }
    }

    #[test]
    fn early_abandon_infinite_threshold_is_exact() {
        let points: Vec<Vec<f32>> = (0..7)
            .map(|i| (0..13).map(|d| (i * 13 + d) as f32 * 0.37 - 2.0).collect())
            .collect();
        let q: Vec<f32> = (0..13).map(|d| d as f32 * 0.11).collect();
        let block = columnar(&points, 13);
        let (mut out, mut alive) = (Vec::new(), Vec::new());
        let ab = dist2_columnar_early_abandon(&block, 7, &q, f64::INFINITY, &mut out, &mut alive)
            .unwrap();
        assert_eq!(ab, 0);
        assert!(alive.iter().all(|&a| a));
        for (p, got) in points.iter().zip(&out) {
            assert_eq!(got.to_bits(), dist2(p, &q).to_bits());
        }
    }

    #[test]
    fn early_abandon_never_drops_a_tie() {
        // Two points at exactly the threshold distance, one strictly
        // beyond: only the strict overshoot may be abandoned.
        let dim = 12;
        let near: Vec<f32> = vec![1.0; dim];
        let far: Vec<f32> = vec![2.0; dim];
        let q: Vec<f32> = vec![0.0; dim];
        let thr = dist2(&near, &q); // exact tie for `near`
        let block = columnar(&[near.clone(), far.clone()], dim);
        let (mut out, mut alive) = (Vec::new(), Vec::new());
        let ab = dist2_columnar_early_abandon(&block, 2, &q, thr, &mut out, &mut alive).unwrap();
        assert_eq!(ab, 1);
        assert!(alive[0], "exact tie must survive");
        assert!(!alive[1]);
        assert_eq!(out[0].to_bits(), thr.to_bits());
    }

    #[test]
    fn layout_mismatch_is_an_error() {
        let block = vec![0u8; 24];
        let mut out = Vec::new();
        let err = dist2_columnar(&block, 2, &[0.0, 0.0], &mut out).unwrap_err();
        assert_eq!(
            err,
            GeometryError::Layout {
                expected: 32,
                actual: 24
            }
        );
    }

    #[test]
    fn empty_block_is_fine() {
        let mut out = vec![1.0];
        dist2_columnar(&[], 0, &[1.0, 2.0], &mut out).unwrap();
        assert!(out.is_empty());
    }
}
