//! Minimum bounding regions over point sets and over child entries.
//!
//! Both the SS-tree and the SR-tree center their bounding spheres on the
//! *weighted centroid* of the underlying points (not the minimum enclosing
//! ball), which is what makes the centroid-based insertion of the SS-tree
//! work. This module implements:
//!
//! * [`Centroid`] — a streaming weighted-mean accumulator (`f64` state);
//! * [`bounding_rect_of_points`] / [`bounding_sphere_of_points`] — the
//!   leaf-level regions;
//! * [`enclosing_radius_spheres`] / [`enclosing_radius_rects`] — the two
//!   radius candidates `d_s` and `d_r` of the SR-tree parent-sphere rule
//!   (paper §4.2): the SS-tree uses `d_s` alone; the SR-tree uses
//!   `min(d_s, d_r)`.

use crate::rect::Rect;
use crate::sphere::Sphere;
use crate::vector::{dist2, Point};

/// Streaming weighted centroid with `f64` accumulation.
///
/// The weight of a child is the number of points beneath it (`w` in the
/// paper's node-entry layout), so the resulting center is the centroid of
/// the *points*, not of the child centers.
#[derive(Clone, Debug)]
pub struct Centroid {
    sums: Vec<f64>,
    weight: u64,
}

impl Centroid {
    /// Empty accumulator for `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        // srlint: allow(assert) -- dimension comes from an existing point's
        // length, which `Point::try_new` already guarantees positive.
        assert!(dim > 0, "centroid needs at least one dimension");
        Centroid {
            sums: vec![0.0; dim],
            weight: 0,
        }
    }

    /// Add a point (or a child centroid) with the given weight.
    pub fn add(&mut self, coords: &[f32], weight: u64) {
        debug_assert_eq!(coords.len(), self.sums.len());
        for (s, &c) in self.sums.iter_mut().zip(coords.iter()) {
            *s += c as f64 * weight as f64;
        }
        self.weight += weight;
    }

    /// Total accumulated weight.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// The centroid, or `None` if nothing has been added (weight zero) —
    /// reachable when a corrupted page decodes to zero-weight entries, so
    /// it must not panic.
    pub fn finish(&self) -> Option<Point> {
        if self.weight == 0 {
            return None;
        }
        let w = self.weight as f64;
        Some(Point::new(
            self.sums
                .iter()
                .map(|&s| (s / w) as f32)
                .collect::<Vec<f32>>(),
        ))
    }
}

/// Minimum bounding rectangle of a set of points; `None` for an empty set
/// (an empty node is a structural-corruption case the tree crates surface
/// as a typed error).
pub fn bounding_rect_of_points<'a, I>(mut points: I) -> Option<Rect>
where
    I: Iterator<Item = &'a [f32]>,
{
    let first = points.next()?;
    let mut rect = Rect::new(first.to_vec(), first.to_vec());
    for p in points {
        rect.expand_to_point(p);
    }
    Some(rect)
}

/// Centroid-centered bounding sphere of a set of points — the leaf-level
/// region of the SS-tree and SR-tree: center at the centroid, radius
/// reaching the farthest point. `None` for an empty set.
pub fn bounding_sphere_of_points(points: &[&[f32]]) -> Option<Sphere> {
    let mut c = Centroid::new(points.first()?.len());
    for p in points {
        c.add(p, 1);
    }
    let center = c.finish()?;
    let r2 = points
        .iter()
        .map(|p| dist2(center.coords(), p))
        .fold(0.0f64, f64::max);
    // Round the radius *up* to the nearest f32 so the f32-stored sphere
    // still contains every point despite the f64→f32 truncation.
    Some(Sphere::new(center, next_radius_up(r2.sqrt())))
}

/// `d_s` of the paper's §4.2: the radius around `center` needed to enclose
/// every child *sphere* — `max_k (||center − c_k|| + r_k)`.
pub fn enclosing_radius_spheres<'a, I>(center: &Point, children: I) -> f64
where
    I: Iterator<Item = (&'a [f32], f32)>,
{
    let mut d = 0.0f64;
    for (c, r) in children {
        let cand = dist2(center.coords(), c).sqrt() + r as f64;
        d = d.max(cand);
    }
    d
}

/// `d_r` of the paper's §4.2: the radius around `center` needed to enclose
/// every child *rectangle* — `max_k MAXDIST(center, R_k)`.
pub fn enclosing_radius_rects<'a, I>(center: &Point, rects: I) -> f64
where
    I: Iterator<Item = &'a Rect>,
{
    let mut d = 0.0f64;
    for r in rects {
        d = d.max(r.max_dist2(center.coords()).sqrt());
    }
    d
}

/// Smallest `f32` radius that, as an `f64`, is `>= r`.
///
/// Bounding spheres are persisted as `f32`; truncating the radius downward
/// would let boundary points escape their own region, which breaks both the
/// structural invariants and — worse — k-NN pruning correctness.
pub fn next_radius_up(r: f64) -> f32 {
    let f = r as f32;
    if (f as f64) >= r {
        f
    } else {
        // One ulp up. f is finite and non-negative here.
        f32::from_bits(f.to_bits() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centroid_simple_mean() {
        let mut c = Centroid::new(2);
        c.add(&[0.0, 0.0], 1);
        c.add(&[2.0, 4.0], 1);
        assert_eq!(c.finish().unwrap().coords(), &[1.0, 2.0]);
        assert_eq!(c.weight(), 2);
    }

    #[test]
    fn centroid_respects_weights() {
        let mut c = Centroid::new(1);
        c.add(&[0.0], 3);
        c.add(&[4.0], 1);
        assert_eq!(c.finish().unwrap().coords(), &[1.0]);
    }

    #[test]
    fn centroid_empty_is_none() {
        assert!(Centroid::new(2).finish().is_none());
        let empty: Vec<&[f32]> = Vec::new();
        assert!(bounding_sphere_of_points(&empty).is_none());
        assert!(bounding_rect_of_points(std::iter::empty()).is_none());
    }

    #[test]
    fn bounding_rect_covers_all() {
        let pts: Vec<Vec<f32>> = vec![vec![0.0, 5.0], vec![-1.0, 2.0], vec![3.0, -4.0]];
        let r = bounding_rect_of_points(pts.iter().map(|p| p.as_slice())).unwrap();
        assert_eq!(r.min(), &[-1.0, -4.0]);
        assert_eq!(r.max(), &[3.0, 5.0]);
        for p in &pts {
            assert!(r.contains_point(p));
        }
    }

    #[test]
    fn bounding_sphere_centered_on_centroid() {
        let pts: Vec<&[f32]> = vec![&[0.0, 0.0], &[2.0, 0.0]];
        let s = bounding_sphere_of_points(&pts).unwrap();
        assert_eq!(s.center().coords(), &[1.0, 0.0]);
        assert!((s.radius() as f64 - 1.0).abs() < 1e-6);
        for p in &pts {
            assert!(s.contains_point(p, 0.0));
        }
    }

    #[test]
    fn bounding_sphere_contains_every_point_despite_f32_rounding() {
        // Irrational centroids exercise the radius round-up.
        let raw: Vec<Vec<f32>> = (0..50)
            .map(|i| {
                let x = (i as f32 * 0.7).sin();
                let y = (i as f32 * 1.3).cos();
                vec![x, y, x * y]
            })
            .collect();
        let pts: Vec<&[f32]> = raw.iter().map(|p| p.as_slice()).collect();
        let s = bounding_sphere_of_points(&pts).unwrap();
        for p in &pts {
            assert!(s.contains_point(p, 0.0), "point {p:?} escaped its sphere");
        }
    }

    #[test]
    fn enclosing_radius_spheres_reaches_far_child() {
        let center = Point::new(vec![0.0, 0.0]);
        let children: Vec<(Vec<f32>, f32)> = vec![(vec![3.0, 0.0], 1.0), (vec![0.0, 1.0], 0.5)];
        let d = enclosing_radius_spheres(&center, children.iter().map(|(c, r)| (c.as_slice(), *r)));
        assert!((d - 4.0).abs() < 1e-9);
    }

    #[test]
    fn enclosing_radius_rects_uses_farthest_vertex() {
        let center = Point::new(vec![0.0, 0.0]);
        let rects = [Rect::new(vec![1.0, 1.0], vec![2.0, 2.0])];
        let d = enclosing_radius_rects(&center, rects.iter());
        assert!((d - 8f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn sr_radius_rule_prefers_smaller_candidate() {
        // A thin, wide rectangle whose corners are nearer than the sphere
        // bound: d_r < d_s, so the SR rule min(d_s, d_r) shrinks the parent
        // sphere below what the SS rule would produce.
        let center = Point::new(vec![0.0, 0.0]);
        let child_center: &[f32] = &[3.0, 0.0];
        let child_sphere_r = 2.0f32;
        let rect = Rect::new(vec![2.5, -0.1], vec![3.5, 0.1]);
        let d_s =
            enclosing_radius_spheres(&center, std::iter::once((child_center, child_sphere_r)));
        let d_r = enclosing_radius_rects(&center, std::iter::once(&rect));
        assert!(d_r < d_s);
        assert!(d_s.min(d_r) == d_r);
    }

    #[test]
    fn next_radius_up_never_shrinks() {
        for r in [0.0f64, 1.0, 0.1, 1e-30, 12345.6789, 1.0000000001] {
            let f = next_radius_up(r);
            assert!(f as f64 >= r, "r={r}");
        }
    }
}
