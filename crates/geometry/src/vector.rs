//! Point vectors and distance kernels.
//!
//! A [`Point`] is a boxed `[f32]` — fixed length after creation, cheap to
//! clone only when explicitly asked, and free of the extra capacity word a
//! `Vec<f32>` would carry into every node entry.

use std::fmt;
use std::ops::{Deref, Index};

use crate::error::GeometryError;

/// A point in D-dimensional space with `f32` coordinates.
///
/// The dimensionality is implicit in the length; every index structure in
/// the workspace validates that all points it stores share one length.
#[derive(Clone, PartialEq)]
pub struct Point(Box<[f32]>);

impl Point {
    /// Create a point from its coordinates.
    ///
    /// This is the infallible constructor for literals and for callers
    /// that have already validated dimensionality (the trees check every
    /// stored point against the index's `dim`). Untrusted input — parsed
    /// files, decoded pages, CLI arguments — goes through
    /// [`Point::try_new`] instead.
    ///
    /// # Panics
    /// Panics if `coords` is empty; zero-dimensional points are meaningless
    /// to every algorithm in this workspace.
    pub fn new(coords: impl Into<Box<[f32]>>) -> Self {
        let coords = coords.into();
        // srlint: allow(assert) -- deliberate contract panic on a
        // constructor for trusted/literal input; fallible callers use
        // `try_new`, which returns `GeometryError::ZeroDim`.
        assert!(
            !coords.is_empty(),
            "points must have at least one dimension"
        );
        Point(coords)
    }

    /// Create a point, rejecting the zero-dimensional case with a typed
    /// error instead of a panic.
    pub fn try_new(coords: impl Into<Box<[f32]>>) -> Result<Self, GeometryError> {
        let coords = coords.into();
        if coords.is_empty() {
            return Err(GeometryError::ZeroDim);
        }
        Ok(Point(coords))
    }

    /// The origin (all-zero point) in `dim` dimensions.
    pub fn zeros(dim: usize) -> Self {
        Point::new(vec![0.0; dim])
    }

    /// Number of dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f32] {
        &self.0
    }

    /// Mutable coordinates.
    #[inline]
    pub fn coords_mut(&mut self) -> &mut [f32] {
        &mut self.0
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        dist2(&self.0, &other.0)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }
}

impl Deref for Point {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        &self.0
    }
}

impl Index<usize> for Point {
    type Output = f32;
    #[inline]
    #[allow(clippy::indexing_slicing)]
    fn index(&self, i: usize) -> &f32 {
        // srlint: allow(index) -- this IS the indexing primitive for Point;
        // the slice access carries the same panic-on-OOB contract as [f32].
        &self.0[i]
    }
}

impl From<Vec<f32>> for Point {
    fn from(v: Vec<f32>) -> Self {
        Point::new(v)
    }
}

impl From<&[f32]> for Point {
    fn from(v: &[f32]) -> Self {
        Point::new(v.to_vec())
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", &self.0)
    }
}

/// Squared Euclidean distance between two coordinate slices.
///
/// Accumulates in `f64`: with 64-dimensional `f32` data the naive `f32`
/// accumulation loses enough precision to reorder near-tied neighbors.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn dist2(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = f64::from(x) - f64::from(y);
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two coordinate slices.
#[inline]
pub fn dist(a: &[f32], b: &[f32]) -> f64 {
    dist2(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_basic() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn dist2_zero_for_identical() {
        let p = [0.25f32, -1.5, 7.0];
        assert_eq!(dist2(&p, &p), 0.0);
    }

    #[test]
    fn dist2_symmetric() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [-4.0f32, 0.5, 9.0];
        assert_eq!(dist2(&a, &b), dist2(&b, &a));
    }

    #[test]
    fn point_accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p[1], 2.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn point_distance_matches_free_function() {
        let a = Point::new(vec![0.0, 1.0]);
        let b = Point::new(vec![1.0, 0.0]);
        assert_eq!(a.dist2(&b), 2.0);
        assert!((a.dist(&b) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dimensional_point_rejected() {
        let _ = Point::new(Vec::<f32>::new());
    }

    #[test]
    fn try_new_rejects_zero_dimensions_without_panicking() {
        assert_eq!(
            Point::try_new(Vec::<f32>::new()).unwrap_err(),
            GeometryError::ZeroDim
        );
        assert_eq!(
            Point::try_new(vec![1.0, 2.0]).unwrap(),
            Point::new(vec![1.0, 2.0])
        );
    }

    #[test]
    fn zeros_constructor() {
        let p = Point::zeros(4);
        assert_eq!(p.coords(), &[0.0; 4]);
    }

    #[test]
    fn f64_accumulation_is_stable() {
        // Sum of many tiny squared differences: f32 accumulation would
        // truncate; the f64 path must see every term.
        let d = 4096;
        let a = vec![0.0f32; d];
        let b = vec![1e-3f32; d];
        let got = dist2(&a, &b);
        let want = d as f64 * 1e-6;
        assert!((got - want).abs() / want < 1e-6);
    }
}
