//! Golden-file test: the seeded-violation fixtures must produce exactly
//! the diagnostics recorded in `tests/golden/`, byte for byte. CI runs
//! this test and fails on any drift — a pass that silently stops firing
//! (or fires somewhere new) shows up as a golden diff, not a green run.
//!
//! To regenerate after an intentional diagnostic change:
//! `UPDATE_GOLDEN=1 cargo test -p sr-lint --test golden_fixtures`.

use sr_lint::{lint_crates, CrateSources, SourceFile};
use std::path::PathBuf;

/// The seeded-violation fixtures and the display paths they are linted
/// under (the accounting fixture runs under the stats path on purpose).
const FIXTURES: &[(&str, &str)] = &[
    ("l1_panic.rs", "l1_panic.rs"),
    ("l4_locks.rs", "l4_locks.rs"),
    ("l5_ordering.rs", "l5_ordering.rs"),
    ("l5_accounting.rs", "crates/pager/src/stats.rs"),
    ("l6_errors.rs", "l6_errors.rs"),
    ("l7_guarded.rs", "l7_guarded.rs"),
    ("l8_sendsync.rs", "l8_sendsync.rs"),
    ("l9_taint.rs", "l9_taint.rs"),
    ("l10_hot.rs", "l10_hot.rs"),
    ("hatch.rs", "hatch.rs"),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn render(display_path: &str, source: &str) -> String {
    let krate = CrateSources {
        name: "fixture".to_string(),
        files: vec![SourceFile {
            path: display_path.to_string(),
            source: source.to_string(),
            l2: false,
        }],
    };
    let report = lint_crates(&[krate], &[]);
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out.push_str(&format!("hatches_used: {}\n", report.hatches_used));
    out
}

#[test]
fn fixture_diagnostics_match_golden_files() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for (fixture, display_path) in FIXTURES {
        let source = std::fs::read_to_string(fixture_dir().join(fixture)).expect("read fixture");
        let got = render(display_path, &source);
        let golden_path = golden_dir().join(format!("{fixture}.golden"));
        if update {
            std::fs::create_dir_all(golden_dir()).expect("mkdir golden");
            std::fs::write(&golden_path, &got).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden_path.display()));
        if got != want {
            failures.push(format!(
                "== {fixture} drifted from {} ==\n--- golden\n{want}--- actual\n{got}",
                golden_path.display()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn every_new_pass_fires_somewhere_in_the_goldens() {
    // Belt and braces on top of the byte diff: if a golden file were
    // regenerated while a pass was broken, the rules it covers would
    // vanish. Require one diagnostic from each new pass family.
    let mut seen = std::collections::HashSet::new();
    for (fixture, display_path) in FIXTURES {
        let source = std::fs::read_to_string(fixture_dir().join(fixture)).expect("read fixture");
        for line in render(display_path, &source).lines() {
            if let Some(rest) = line.split('[').nth(1) {
                if let Some(rule) = rest.split(']').next() {
                    seen.insert(rule.to_string());
                }
            }
        }
    }
    for rule in [
        "L4/lock-cycle",
        "L4/lock-order",
        "L4/lock-io",
        "L4/guard-escape",
        "L5/ordering",
        "L5/ordering-relaxed",
        "L5/ordering-unused",
        "L6/error-conversion",
        "L6/swallowed-error",
        "L6/stale-deprecated",
        "L7/unguarded-access",
        "L7/bad-annotation",
        "L7/unprotected-shared",
        "L8/unsafe-impl",
        "L8/missing-note",
        "L8/interior-mutability",
        "L8/send-sync-unused",
        "L9/unchecked-length",
        "L9/unchecked-offset",
        "L9/tainted-alloc",
        "L10/hot-alloc",
        "L10/hot-lock",
        "L10/hot-io",
    ] {
        assert!(seen.contains(rule), "no golden fixture exercises {rule}");
    }
}

#[test]
fn fixture_workspace_family_counts_match_golden_json() {
    // The whole fixture set linted as one multi-crate workspace (each
    // fixture its own crate), snapshotting the per-family counts from
    // the `--json` report. Cross-crate call-graph resolution runs here,
    // so a resolver regression shifts a count even when the per-fixture
    // goldens (single-crate) stay put.
    let crates: Vec<_> = FIXTURES
        .iter()
        .map(|(fixture, display_path)| {
            let source =
                std::fs::read_to_string(fixture_dir().join(fixture)).expect("read fixture");
            CrateSources {
                name: fixture.trim_end_matches(".rs").to_string(),
                files: vec![SourceFile {
                    path: display_path.to_string(),
                    source,
                    l2: false,
                }],
            }
        })
        .collect();
    let json = lint_crates(&crates, &[]).to_json();
    let families = json
        .lines()
        .find(|l| l.trim_start().starts_with("\"families\""))
        .expect("families line in JSON report")
        .trim()
        .to_string();
    let golden_path = golden_dir().join("families.json.golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, format!("{families}\n")).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect("read families golden");
    assert_eq!(format!("{families}\n"), want);
}
