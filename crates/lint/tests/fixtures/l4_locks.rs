//! L4 fixture: declared-order violation, I/O under a guard, and a cycle.
// srlint: lock-order(meta < shard) -- fixture order: free-list state before cache stripes

pub struct Pager {
    meta: Mutex<Meta>,
    shard: Mutex<Cache>,
}

impl Pager {
    pub fn ordered_ok(&self) {
        let m = self.meta.lock();
        let s = self.shard.lock();
        drop(s);
        drop(m);
    }

    pub fn inverted(&self) {
        let s = self.shard.lock();
        let m = self.meta.lock();
        drop(m);
        drop(s);
    }

    pub fn io_under_guard(&self, id: u64, data: &[u8]) {
        let s = self.shard.lock();
        self.write_page(id, data);
        drop(s);
    }

    pub fn io_after_guard(&self, id: u64, data: &[u8]) {
        let s = self.shard.lock();
        drop(s);
        self.write_page(id, data);
    }

    fn write_page(&self, _id: u64, _data: &[u8]) {}
}

pub struct Tangle {
    left: Mutex<u32>,
    right: Mutex<u32>,
}

impl Tangle {
    pub fn forward(&self) {
        let a = self.left.lock();
        let b = self.right.lock();
        drop(b);
        drop(a);
    }

    pub fn backward(&self) {
        let b = self.right.lock();
        let a = self.left.lock();
        drop(a);
        drop(b);
    }
}

pub struct Escapes {
    meta: Mutex<Meta>,
}

impl Escapes {
    pub fn guard_tail(&self) -> MutexGuard<Meta> {
        let m = self.meta.lock();
        m
    }

    pub fn guard_return_stmt(&self) -> MutexGuard<Meta> {
        return self.meta.lock();
    }

    pub fn rebound_escape(&self) -> MutexGuard<Meta> {
        let m = self.meta.lock();
        let m2 = m;
        m2
    }

    pub fn data_not_guard(&self) -> u64 {
        let m = self.meta.lock();
        m.value
    }

    pub fn rebound_then_dropped(&self) {
        let m = self.meta.lock();
        let m2 = m;
        drop(m2);
    }

    pub fn hatched_accessor(&self) -> MutexGuard<Meta> {
        // srlint: allow(guard-escape) -- fixture: sanctioned accessor; the caller is the lock scope
        self.meta.lock()
    }
}
