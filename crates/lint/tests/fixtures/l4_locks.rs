//! L4 fixture: declared-order violation, I/O under a guard, and a cycle.
// srlint: lock-order(meta < shard) -- fixture order: free-list state before cache stripes

pub struct Pager {
    meta: Mutex<Meta>,
    shard: Mutex<Cache>,
}

impl Pager {
    pub fn ordered_ok(&self) {
        let m = self.meta.lock();
        let s = self.shard.lock();
        drop(s);
        drop(m);
    }

    pub fn inverted(&self) {
        let s = self.shard.lock();
        let m = self.meta.lock();
        drop(m);
        drop(s);
    }

    pub fn io_under_guard(&self, id: u64, data: &[u8]) {
        let s = self.shard.lock();
        self.write_page(id, data);
        drop(s);
    }

    pub fn io_after_guard(&self, id: u64, data: &[u8]) {
        let s = self.shard.lock();
        drop(s);
        self.write_page(id, data);
    }

    fn write_page(&self, _id: u64, _data: &[u8]) {}
}

pub struct Tangle {
    left: Mutex<u32>,
    right: Mutex<u32>,
}

impl Tangle {
    pub fn forward(&self) {
        let a = self.left.lock();
        let b = self.right.lock();
        drop(b);
        drop(a);
    }

    pub fn backward(&self) {
        let b = self.right.lock();
        let a = self.left.lock();
        drop(a);
        drop(b);
    }
}
