//! L5 accounting fixture: linted under the stats path, where `Relaxed`
//! needs a note that names the invariant it preserves.

pub struct IoTally {
    misses: AtomicU64,
    physical: AtomicU64,
}

impl IoTally {
    pub fn record_miss(&self) {
        // srlint: ordering -- fast counter on the read path
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_physical(&self) {
        // srlint: ordering -- invariant: incremented under the same shard lock as misses, so misses == physical_reads holds at quiescence
        self.physical.fetch_add(1, Ordering::Relaxed);
    }
}
