//! L6 fixture: a `?` that escapes the typed-error `From` chains, silent
//! swallowing of typed errors, and a stale `#[deprecated]` item.

pub enum FixtureError {
    Broken,
}

pub enum OtherError {
    Bad,
}

pub enum ThirdError {
    Worse,
}

impl From<OtherError> for FixtureError {
    fn from(_e: OtherError) -> FixtureError {
        FixtureError::Broken
    }
}

pub fn make_other() -> Result<u32, OtherError> {
    Err(OtherError::Bad)
}

pub fn make_third() -> Result<u32, ThirdError> {
    Err(ThirdError::Worse)
}

pub fn converts(x: u32) -> Result<u32, FixtureError> {
    let v = make_other()?;
    Ok(v + x)
}

pub fn leaks() -> Result<u32, FixtureError> {
    let v = make_third()?;
    Ok(v)
}

pub fn mapped() -> Result<u32, FixtureError> {
    let v = make_third().map_err(|_| FixtureError::Broken)?;
    Ok(v)
}

pub fn swallows() -> u32 {
    let a = make_third().ok();
    let b = make_other().unwrap_or_default();
    b + u32::from(a.is_some())
}

#[deprecated(since = "0.1.0", note = "renamed")]
pub fn old_spelling() -> u32 {
    3
}
