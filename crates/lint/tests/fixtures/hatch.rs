//! Fixture: escape hatches — justified, trailing, unused, and
//! malformed. NOT compiled.

pub fn justified(xs: &[u32]) -> u32 {
    // srlint: allow(panic) -- slice is non-empty by construction in the
    // only caller; the invariant is asserted one frame up.
    let first = xs.first().unwrap();
    *first
}

pub fn trailing(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // srlint: allow(panic) -- same invariant as above
}

pub fn unused_hatch(x: u32) -> u32 {
    // srlint: allow(panic) -- nothing here actually panics
    x + 1
}

pub fn malformed_hatch(xs: &[u32]) -> u32 {
    // srlint: allow(panic)
    *xs.first().unwrap()
}
