//! Seeded L9 violations: untrusted lengths, offsets, and allocation
//! sizes flowing to sinks without a dominating validation — plus the
//! sanctioned patterns (comparison, derived check, `validated(...)`
//! note, `allow(...)` hatch) that must stay silent.

// srlint: untrusted-source -- models a header count decoded from raw bytes
fn read_count(buf: &[u8]) -> usize {
    buf.len() % 256
}

/// Thin wrapper: returns taint to its callers through the fixpoint.
fn decode_len(buf: &[u8]) -> usize {
    read_count(buf)
}

fn splits_unchecked(buf: &[u8]) -> (&[u8], &[u8]) {
    buf.split_at(read_count(buf))
}

fn indexes_unchecked(buf: &[u8]) -> u8 {
    let off = read_count(buf);
    buf[off]
}

fn repeats_unchecked(buf: &[u8]) -> Vec<u8> {
    let n = read_count(buf);
    vec![0u8; n]
}

fn loops_unchecked(buf: &[u8]) -> u64 {
    let n = decode_len(buf);
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(i as u64);
    }
    acc
}

/// The tainted argument crosses the call edge: the sink fires inside
/// the callee, attributed to its parameter.
fn forwards_taint(buf: &[u8]) -> Vec<u8> {
    let n = read_count(buf);
    alloc_exact(n)
}

fn alloc_exact(cap: usize) -> Vec<u8> {
    Vec::with_capacity(cap)
}

fn checked_is_clean(buf: &[u8]) -> (&[u8], &[u8]) {
    let n = read_count(buf);
    if n > buf.len() {
        return (buf, &[]);
    }
    buf.split_at(n)
}

/// Validating a derived quantity clears the chain: the comparison on
/// `need` dominates the `n` it was computed from.
fn derived_check_is_clean(buf: &[u8]) -> (&[u8], &[u8]) {
    let n = read_count(buf);
    let need = n * 8;
    if need > buf.len() {
        return (buf, &[]);
    }
    buf.split_at(n)
}

fn validated_note_is_clean(buf: &[u8]) -> Vec<u8> {
    let n = read_count(buf);
    // srlint: validated(n) -- read_count bounds it by the modulus
    Vec::with_capacity(n)
}

fn hatched_is_clean(buf: &[u8]) -> Vec<u8> {
    let n = read_count(buf);
    // srlint: allow(tainted-alloc) -- capacity is clamped by the page size upstream
    Vec::with_capacity(n)
}
