//! Fixture: every L1 violation class, plus test code that must be
//! skipped. NOT compiled — parsed by the lint fixture tests only.

pub fn lookup(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("second element");
    if *first > *second {
        panic!("out of order");
    }
    match first {
        0 => todo!(),
        1 => unreachable!(),
        _ => *first,
    }
}

pub fn release_asserts_are_flagged(x: usize, y: usize) -> usize {
    assert!(x < 100, "caller contract");
    assert_eq!(x % 2, 0);
    assert_ne!(y, 0);
    debug_assert!(x != 7);
    // srlint: allow(assert) -- fixture: a documented contract panic.
    assert!(y < 100);
    x + y
}

pub fn fallbacks_are_fine(x: Option<u32>) -> u32 {
    // `unwrap_or` and friends are total functions, not panics.
    x.unwrap_or(0).max(x.unwrap_or_else(|| 1)).max(x.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let w: Option<u32> = None;
        let _ = std::panic::catch_unwind(|| w.expect("boom"));
        panic!("test panics are fine");
    }
}
