//! Fixture: a fully clean library file — no diagnostics expected even
//! with the L2 audit enabled. NOT compiled.

/// The crate-local Result alias.
pub type Result<T> = std::result::Result<T, CleanError>;

/// A typed error, all variants constructed.
pub enum CleanError {
    Empty,
    Bad(String),
}

pub fn head(xs: &[u32]) -> Result<u32> {
    match xs.first() {
        Some(v) => Ok(*v),
        None => Err(CleanError::Empty),
    }
}

pub fn parse(s: &str) -> Result<u32> {
    s.parse().map_err(|_| CleanError::Bad(s.to_string()))
}

pub fn dist2(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = f64::from(x - y);
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwraps_allowed_here() {
        assert_eq!(head(&[5]).ok().unwrap(), 5);
    }
}
