//! Fixture: L2 violations in a (pretend) hot-path file. NOT compiled.

pub fn min_dist(q: &[f32], lo: &[f32]) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..q.len() {
        let d = (q[i] - lo[i]) as f64;
        acc += d * d;
    }
    acc
}

pub fn clean_variant(q: &[f32], lo: &[f32]) -> f64 {
    q.iter()
        .zip(lo.iter())
        .map(|(a, b)| {
            let d = f64::from(a - b);
            d * d
        })
        .sum()
}

pub fn array_types_are_fine(bytes: [u8; 8]) -> u64 {
    // A type position `[u8; 8]` and an array literal are not indexing.
    let copy: [u8; 8] = bytes;
    u64::from_le_bytes(copy)
}
