//! L8 fixture: Send/Sync boundary audit — fire, clean, and hatched
//! variants for each rule.

pub struct NoNote {
    inner: Mutex<u32>,
}

// srlint: send-sync -- fixture: audited pool-shared type
pub struct Noted {
    inner: Mutex<u32>,
}

// srlint: allow(missing-note) -- fixture: migration in flight, the note lands with the next PR
pub struct Hatched {
    inner: Mutex<u32>,
}

// srlint: send-sync -- fixture: claims to be shareable but is not
pub struct Sneaky {
    cell: RefCell<u64>,
    ok: AtomicU64,
}

// srlint: send-sync -- fixture: raw-pointer variant, hatched
pub struct SneakyHatched {
    // srlint: allow(interior-mutability) -- fixture: pointer is never dereferenced off-thread
    // srlint: allow(unprotected-shared) -- fixture: same field, audited by hand
    raw: *mut u8,
    ok: AtomicU64,
}

pub struct Plain {
    p: u64,
}

unsafe impl Send for Plain {}

// srlint: allow(unsafe-impl) -- fixture: FFI handle audited by hand
unsafe impl Sync for Plain {}

// srlint: send-sync -- fixture: floating note with nothing under it

pub fn unrelated() {}

// srlint: allow(send-sync-unused) -- fixture: note kept while its struct moves here
pub fn unrelated2() {} // srlint: send-sync -- fixture: floating note
