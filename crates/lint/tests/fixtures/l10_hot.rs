//! Seeded L10 violations: heap allocation, lock acquisition, and store
//! I/O reachable from `// srlint: hot` roots — directly and through
//! the call graph — plus the amortized-scratch pattern that must stay
//! silent.

// srlint: hot
fn hot_direct_alloc(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}

// srlint: hot
fn hot_transitive_alloc(xs: &[f64]) -> usize {
    let label = describe(xs);
    label.len()
}

fn describe(xs: &[f64]) -> String {
    format!("{} lanes", xs.len())
}

// srlint: hot
fn hot_takes_lock(counter: &std::sync::Mutex<u64>) -> u64 {
    let g = counter.lock();
    *g
}

/// Reads a page straight off the store.
#[doc = "srlint: io"]
fn load_page(id: u64) -> [u8; 16] {
    [id as u8; 16]
}

// srlint: hot
fn hot_touches_store(id: u64) -> usize {
    let page = load_page(id);
    page.len()
}

/// Amortized scratch growth is allowed on hot paths: `clear`, `push`,
/// and `resize` reuse capacity and are deliberately outside the ban.
// srlint: hot
fn hot_clean(xs: &[f64], out: &mut Vec<f64>) {
    out.clear();
    for x in xs {
        out.push(*x * *x);
    }
}

// srlint: hot
fn hot_hatched(xs: &[f64]) -> Vec<f64> {
    // srlint: allow(hot-alloc) -- one-time warmup, measured off the query path
    xs.to_vec()
}
