//! L5 fixture: an unjustified atomic ordering, a justified one, a
//! `std::cmp::Ordering` path that must not match, and an unused note.

pub struct Counter {
    hits: AtomicU64,
}

impl Counter {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn total(&self) -> u64 {
        // srlint: ordering -- monotone tally read; no cross-thread invariant rides on it
        self.hits.load(Ordering::Relaxed)
    }

    pub fn closer(&self, x: u32, y: u32) -> bool {
        matches!(x.cmp(&y), Ordering::Less)
    }

    pub fn plain(&self) -> u32 {
        // srlint: ordering -- nothing atomic happens in this function
        7
    }
}
