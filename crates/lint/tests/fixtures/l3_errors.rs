//! Fixture: L3 violations — untyped Result errors and a dead error
//! variant. NOT compiled.

/// A typed error with one live and one dead variant.
pub enum FixtureError {
    /// Constructed below: live.
    Live(String),
    /// Never constructed anywhere: dead.
    Dead,
}

pub fn stringly(x: u32) -> Result<u32, String> {
    if x > 0 {
        Ok(x)
    } else {
        Err("zero".to_string())
    }
}

pub fn io_result(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

pub fn typed(x: u32) -> Result<u32, FixtureError> {
    if x > 0 {
        Ok(x)
    } else {
        Err(FixtureError::Live("zero".into()))
    }
}

pub fn matches_are_not_constructions(e: &FixtureError) -> &'static str {
    match e {
        FixtureError::Live(_) => "live",
        FixtureError::Dead => "dead",
    }
}
