//! L7 fixture: guarded-by field-access checks — fire, clean, and
//! hatched variants for each rule.

// srlint: send-sync -- fixture: shared across the worker pool
pub struct Shared {
    lock: Mutex<State>,
    counter: AtomicU64,
    plain: u64,
    tag: u32, // srlint: guarded-by(owner)
}

pub struct State {
    value: u64, // srlint: guarded-by(lock)
    dirty: bool, // srlint: guarded-by(lock)
    // srlint: guarded-by(nonexistent)
    broken: u32,
}

pub struct Legacy {
    // srlint: guarded-by(retired_lock)
    // srlint: allow(bad-annotation) -- fixture: documents a lock a later PR reintroduces
    old: u32,
}

// srlint: send-sync -- fixture: pool-shared scratch space
pub struct Scratch {
    // srlint: allow(unprotected-shared) -- fixture: single-writer scratch audited by hand
    buf: Vec<u8>,
}

impl Shared {
    pub fn read_ok(&self) -> u64 {
        let g = self.lock.lock();
        g.value
    }

    pub fn temp_guard_ok(&self) -> u64 {
        self.lock.lock().value
    }

    pub fn read_after_drop(&self) -> bool {
        let g = self.lock.lock();
        drop(g);
        g.dirty
    }

    pub fn read_hatched(&self) -> bool {
        let g = self.lock.lock();
        drop(g);
        // srlint: allow(unguarded-access) -- fixture: benign stale read feeding a heuristic
        g.dirty
    }
}

pub fn helper(state: &State) -> u64 {
    state.value
}
