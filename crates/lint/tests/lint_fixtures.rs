//! Exact-diagnostic tests for every srlint rule, run over the fixture
//! files in `tests/fixtures/` (which are parsed, never compiled).

use sr_lint::{lint_crates, CrateSources, Diagnostic, SourceFile};

fn lint_one(path: &str, source: &str, l2: bool) -> Vec<Diagnostic> {
    let krate = CrateSources {
        name: "fixture".to_string(),
        files: vec![SourceFile {
            path: path.to_string(),
            source: source.to_string(),
            l2,
        }],
    };
    lint_crates(&[krate], &[]).diagnostics
}

fn rules_at(diags: &[Diagnostic]) -> Vec<(String, u32)> {
    diags.iter().map(|d| (d.rule.clone(), d.line)).collect()
}

#[test]
fn l1_flags_every_panic_class_and_skips_tests() {
    let diags = lint_one("l1_panic.rs", include_str!("fixtures/l1_panic.rs"), false);
    let l1: Vec<_> = diags.iter().filter(|d| d.rule == "L1/panic").collect();
    // unwrap, expect, panic!, todo!, unreachable! from L1/panic, then the
    // release-mode assert family from L1/assert — and nothing from the
    // cfg(test) module, the unwrap_or family, `debug_assert!`, or the
    // hatched assert.
    assert_eq!(
        rules_at(&diags.clone()),
        vec![
            ("L1/panic".to_string(), 5),
            ("L1/panic".to_string(), 6),
            ("L1/panic".to_string(), 8),
            ("L1/panic".to_string(), 11),
            ("L1/panic".to_string(), 12),
            ("L1/assert".to_string(), 18),
            ("L1/assert".to_string(), 19),
            ("L1/assert".to_string(), 20),
        ],
        "{diags:#?}"
    );
    // Exact positions and messages for the first two.
    assert_eq!(l1[0].line, 5);
    assert_eq!(l1[0].col, 28);
    assert_eq!(
        l1[0].message,
        "`.unwrap()` can panic in non-test library code; return a typed error instead"
    );
    assert_eq!(
        l1[1].message,
        "`.expect()` can panic in non-test library code; return a typed error instead"
    );
    assert!(
        diags.iter().all(|d| d.line < 32,),
        "cfg(test) module must be exempt: {diags:#?}"
    );
}

#[test]
fn l2_flags_indexing_and_casts_only_in_audited_files() {
    let src = include_str!("fixtures/l2_hotpath.rs");
    let diags = lint_one("l2_hotpath.rs", src, true);
    assert_eq!(
        rules_at(&diags),
        vec![
            ("L2/index".to_string(), 6),
            ("L2/index".to_string(), 6),
            ("L2/cast".to_string(), 6),
        ],
        "{diags:#?}"
    );
    assert_eq!(
        diags[2].message,
        "`as f64` cast in an audited hot path; use `From`/`try_from` or a widening helper"
    );
    // The same file outside the L2 audit raises nothing.
    assert!(lint_one("not_hot.rs", src, false).is_empty());
}

#[test]
fn l3_flags_untyped_results_and_dead_variants() {
    let diags = lint_one("l3_errors.rs", include_str!("fixtures/l3_errors.rs"), false);
    assert_eq!(
        rules_at(&diags),
        vec![
            ("L3/dead-variant".to_string(), 9),
            ("L3/error-type".to_string(), 12),
            ("L3/error-type".to_string(), 20),
        ],
        "{diags:#?}"
    );
    assert_eq!(
        diags[0].message,
        "error variant `FixtureError::Dead` is never constructed; delete it or construct it"
    );
    assert!(diags[1].message.contains("`stringly`"), "{:?}", diags[1]);
    assert!(diags[1].message.contains("String"), "{:?}", diags[1]);
    assert!(
        diags[2].message.contains("std::io::Result"),
        "{:?}",
        diags[2]
    );
}

#[test]
fn dead_variant_constructed_in_another_file_is_live() {
    let krate = CrateSources {
        name: "fixture".to_string(),
        files: vec![SourceFile {
            path: "l3_errors.rs".to_string(),
            source: include_str!("fixtures/l3_errors.rs").to_string(),
            l2: false,
        }],
    };
    // A test elsewhere constructs the dead variant: the census spans the
    // whole workspace, so the variant is live.
    let extra = SourceFile {
        path: "tests/x.rs".to_string(),
        source: "fn t() { let _ = FixtureError::Dead; }".to_string(),
        l2: false,
    };
    let report = lint_crates(&[krate], &[extra]);
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.rule == "L3/dead-variant"),
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn l4_flags_order_violation_io_under_guard_and_cycles() {
    let diags = lint_one("l4_locks.rs", include_str!("fixtures/l4_locks.rs"), false);
    assert_eq!(
        rules_at(&diags),
        vec![
            // The fixture's lock-owning structs carry no send-sync
            // notes, so L8 fires alongside the L4 cases. ordered_ok's
            // meta->shard edge plus inverted's shard->meta edge close a
            // cycle in the acquisition graph, reported once at its
            // first site — on top of the declared-order violation.
            ("L8/missing-note".to_string(), 4),
            ("L4/lock-cycle".to_string(), 12),
            ("L4/lock-order".to_string(), 19),
            ("L4/lock-io".to_string(), 26),
            ("L8/missing-note".to_string(), 39),
            ("L4/lock-cycle".to_string(), 47),
            ("L8/missing-note".to_string(), 60),
            ("L4/guard-escape".to_string(), 67),
            ("L4/guard-escape".to_string(), 71),
            ("L4/guard-escape".to_string(), 77),
        ],
        "{diags:#?}"
    );
    assert_eq!(diags[1].col, 28);
    assert_eq!(
        diags[1].message,
        "lock acquisition cycle: meta -> shard -> meta"
    );
    assert_eq!(diags[2].col, 27);
    assert_eq!(
        diags[2].message,
        "lock `meta` acquired while `shard` is held; declared order is `meta < shard`"
    );
    assert_eq!(diags[3].col, 14);
    assert_eq!(
        diags[3].message,
        "I/O call `write_page()` while holding lock `shard`; move the I/O outside the guard \
         (only the sanctioned read-through may hatch this)"
    );
    assert_eq!(
        diags[5].message,
        "lock acquisition cycle: left -> right -> left"
    );
    assert!(
        diags[7].message.contains("escapes `guard_tail()`"),
        "{:?}",
        diags[7]
    );
}

#[test]
fn l5_flags_unjustified_orderings_and_unused_notes() {
    let diags = lint_one(
        "l5_ordering.rs",
        include_str!("fixtures/l5_ordering.rs"),
        false,
    );
    assert_eq!(
        rules_at(&diags),
        vec![
            ("L8/missing-note".to_string(), 4),
            ("L5/ordering".to_string(), 10),
            ("L5/ordering-unused".to_string(), 23),
        ],
        "std::cmp::Ordering::Less must not match: {diags:#?}"
    );
    assert_eq!(diags[1].col, 42);
    assert_eq!(
        diags[1].message,
        "`Ordering::Relaxed` without a `// srlint: ordering -- <reason>` note on the \
         enclosing item"
    );
    assert_eq!(diags[2].col, 9);
    assert_eq!(
        diags[2].message,
        "srlint ordering note justifies no `Ordering::` use; remove it"
    );
}

#[test]
fn l5_accounting_files_demand_an_invariant_for_relaxed() {
    // The same fixture linted under an accounting path: a note that does
    // not name the invariant is not enough for `Relaxed`.
    let diags = lint_one(
        "crates/pager/src/stats.rs",
        include_str!("fixtures/l5_accounting.rs"),
        false,
    );
    assert_eq!(
        rules_at(&diags),
        vec![
            ("L8/missing-note".to_string(), 4),
            ("L5/ordering-relaxed".to_string(), 12),
        ],
        "{diags:#?}"
    );
    assert_eq!(diags[1].col, 44);
    assert_eq!(
        diags[1].message,
        "`Ordering::Relaxed` on accounting state needs an ordering note stating the \
         invariant it preserves (reason must name the `invariant`)"
    );
    // Under a non-accounting path the very same file raises no L5 (the
    // atomic-owning struct still owes its send-sync note).
    let relaxed = lint_one(
        "not_accounting.rs",
        include_str!("fixtures/l5_accounting.rs"),
        false,
    );
    assert!(
        relaxed.iter().all(|d| !d.rule.starts_with("L5/")),
        "{relaxed:#?}"
    );
}

#[test]
fn l6_flags_unconverted_question_marks_swallows_and_stale_deprecations() {
    let diags = lint_one("l6_errors.rs", include_str!("fixtures/l6_errors.rs"), false);
    assert_eq!(
        rules_at(&diags),
        vec![
            ("L6/error-conversion".to_string(), 36),
            ("L6/swallowed-error".to_string(), 46),
            ("L6/swallowed-error".to_string(), 47),
            ("L6/stale-deprecated".to_string(), 52),
        ],
        "converts() and mapped() must stay clean: {diags:#?}"
    );
    assert_eq!(diags[0].col, 25);
    assert_eq!(
        diags[0].message,
        "`?` on `make_third()` propagates `ThirdError` but the function returns \
         `Result<_, FixtureError>` and no `From<ThirdError> for FixtureError` chain exists; \
         convert with `map_err` or add the impl"
    );
    assert_eq!(diags[1].col, 26);
    assert!(
        diags[1]
            .message
            .contains("silently discards the `ThirdError`"),
        "{:?}",
        diags[1]
    );
    assert!(
        diags[2].message.contains("`.unwrap_or_default(..)`"),
        "{:?}",
        diags[2]
    );
    assert_eq!(diags[3].col, 8);
    assert!(
        diags[3]
            .message
            .contains("outlived its one-PR grace period"),
        "{:?}",
        diags[3]
    );
}

#[test]
fn hatches_suppress_exactly_once_each() {
    let diags = lint_one("hatch.rs", include_str!("fixtures/hatch.rs"), false);
    assert_eq!(
        rules_at(&diags),
        vec![
            ("hatch/unused".to_string(), 16),
            ("hatch/malformed".to_string(), 21),
            ("L1/panic".to_string(), 22),
        ],
        "{diags:#?}"
    );
}

#[test]
fn clean_file_is_clean_even_under_l2() {
    let report = {
        let krate = CrateSources {
            name: "fixture".to_string(),
            files: vec![SourceFile {
                path: "clean.rs".to_string(),
                source: include_str!("fixtures/clean.rs").to_string(),
                l2: true,
            }],
        };
        lint_crates(&[krate], &[])
    };
    assert!(report.is_clean(), "{:#?}", report.diagnostics);
    assert_eq!(report.hatches_used, 0);
}

#[test]
fn json_output_is_well_formed_and_escaped() {
    let diags = lint_one(
        "weird\"path.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        false,
    );
    assert_eq!(diags.len(), 1);
    let report = sr_lint::LintReport {
        diagnostics: diags,
        hatches_used: 0,
        files_scanned: 1,
        timings: Vec::new(),
    };
    let json = report.to_json();
    assert!(json.contains("\"violation_count\": 1"), "{json}");
    assert!(json.contains("weird\\\"path.rs"), "{json}");
    assert!(json.contains("\"rule\": \"L1/panic\""), "{json}");
    assert!(
        json.contains("\"families\": {\"L1\": 1, \"L2\": 0"),
        "{json}"
    );
    assert!(json.contains("\"files_scanned\": 1"), "{json}");
}

#[test]
fn l4_guard_rebinding_moves_the_held_guard() {
    // `let g2 = g;` must move the guard: the old name no longer
    // releases it, the new name does, and field access through the new
    // name still counts as held.
    let src = "pub struct S {\n    m: Mutex<Inner>,\n}\nimpl S {\n    pub fn f(&self) -> u64 {\n        let g = self.m.lock();\n        let g2 = g;\n        let v = g2.value;\n        drop(g2);\n        v\n    }\n}\n";
    let diags = lint_one("rebind.rs", src, false);
    assert!(
        diags
            .iter()
            .all(|d| !d.rule.starts_with("L4/") && !d.rule.starts_with("L7/")),
        "rebinding must not confuse the walk: {diags:#?}"
    );
}

#[test]
fn l4_guard_escape_fires_on_tail_return_and_rebind() {
    let src = include_str!("fixtures/l4_locks.rs");
    let diags = lint_one("l4_locks.rs", src, false);
    let escapes: Vec<u32> = diags
        .iter()
        .filter(|d| d.rule == "L4/guard-escape")
        .map(|d| d.line)
        .collect();
    // guard_tail (bare tail binding), guard_return_stmt (return of a
    // fresh acquisition), rebound_escape (tail of the moved binding);
    // hatched_accessor is suppressed, data_not_guard returns data.
    assert_eq!(escapes, vec![67, 71, 77], "{diags:#?}");
}

#[test]
fn l4_lock_shims_may_return_guards() {
    // Functions named lock/read/write are the std-wrapper shims whose
    // whole point is returning a guard.
    let src = "impl Mutex {\n    pub fn lock(&self) -> MutexGuard<'_, T> {\n        self.0.lock()\n    }\n}\n";
    let diags = lint_one("sync.rs", src, false);
    assert!(
        diags.iter().all(|d| d.rule != "L4/guard-escape"),
        "shim must be exempt: {diags:#?}"
    );
}

#[test]
fn l7_exact_diagnostics_from_fixture() {
    let src = include_str!("fixtures/l7_guarded.rs");
    let diags = lint_one("l7_guarded.rs", src, false);
    let l7: Vec<_> = diags.iter().filter(|d| d.rule.starts_with("L7/")).collect();
    assert_eq!(
        l7.iter()
            .map(|d| (d.rule.as_str(), d.line))
            .collect::<Vec<_>>(),
        vec![
            ("L7/unprotected-shared", 8),
            ("L7/bad-annotation", 16),
            ("L7/unguarded-access", 44),
        ],
        "{l7:#?}"
    );
    assert!(
        l7[2].message.contains("`dirty` is guarded by `lock`"),
        "{}",
        l7[2].message
    );
}

#[test]
fn l7_param_typed_as_guarded_struct_assumes_the_lock() {
    // A fn taking &MetaState-style params can only be called under the
    // lock, so field access through the param is clean — but the
    // assumed guard must not satisfy an explicit re-acquisition check
    // or leak into the order graph.
    let src = "pub struct Owner {\n    m: Mutex<Inner>,\n}\npub struct Inner {\n    value: u64, // srlint: guarded-by(m)\n}\nimpl Owner {\n    fn use_inner(&self) -> u64 {\n        let g = self.m.lock();\n        helper(&g)\n    }\n}\npub fn helper(inner: &Inner) -> u64 {\n    inner.value\n}\n";
    let diags = lint_one("assumed.rs", src, false);
    assert!(
        diags.iter().all(|d| d.rule != "L7/unguarded-access"),
        "param-typed access must be assumed held: {diags:#?}"
    );
}

#[test]
fn l8_exact_diagnostics_from_fixture() {
    let src = include_str!("fixtures/l8_sendsync.rs");
    let diags = lint_one("l8_sendsync.rs", src, false);
    let l8: Vec<_> = diags.iter().filter(|d| d.rule.starts_with("L8/")).collect();
    assert_eq!(
        l8.iter()
            .map(|d| (d.rule.as_str(), d.line))
            .collect::<Vec<_>>(),
        vec![
            ("L8/missing-note", 4),
            ("L8/interior-mutability", 20),
            ("L8/unsafe-impl", 36),
            ("L8/send-sync-unused", 41),
        ],
        "{l8:#?}"
    );
    assert!(l8[0].message.contains("`NoNote`"), "{}", l8[0].message);
    assert!(
        l8[2].message.contains("unsafe impl Send"),
        "{}",
        l8[2].message
    );
}
