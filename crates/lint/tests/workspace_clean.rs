//! Self-check: the real workspace passes srlint clean, within the hatch
//! budget, and a seeded violation is caught.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint/ -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint")
        .to_path_buf()
}

#[test]
fn workspace_passes_srlint_clean() {
    let report = sr_lint::lint_workspace(&workspace_root()).expect("lint run");
    assert!(
        report.is_clean(),
        "srlint violations in the workspace:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn query_obs_and_exec_crates_are_under_the_lint_gate() {
    // The query hot path, the observability substrate, and the batch
    // executor must stay under the L1/L3 rules: a regression that drops
    // any of them from the configuration would silently exempt the code
    // most PRs touch.
    for name in ["query", "obs", "exec"] {
        assert!(
            sr_lint::LIB_CRATES.contains(&name),
            "{name} missing from LIB_CRATES"
        );
        assert!(
            workspace_root()
                .join("crates")
                .join(name)
                .join("src")
                .is_dir(),
            "crates/{name}/src missing on disk"
        );
    }
}

#[test]
fn hatch_budget_respected() {
    // The acceptance bar: fewer than 10 justified escape hatches total.
    let report = sr_lint::lint_workspace(&workspace_root()).expect("lint run");
    assert!(
        report.hatches_used < 10,
        "{} hatches in use; the budget is < 10",
        report.hatches_used
    );
}

#[test]
fn seeded_violation_fails_the_gate() {
    // Simulate a PR that sneaks an unwrap into a library crate: the same
    // configuration that passes above must fail with the file poisoned.
    let root = workspace_root();
    let mut crates = Vec::new();
    for name in sr_lint::LIB_CRATES {
        let dir = root.join("crates").join(name).join("src");
        let mut files = Vec::new();
        for entry in walk(&dir) {
            let rel = entry
                .strip_prefix(&root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            let mut source = std::fs::read_to_string(&entry).expect("read source");
            if rel == "crates/pager/src/pagefile.rs" {
                source.push_str("\npub fn seeded(v: Option<u32>) -> u32 { v.unwrap() }\n");
            }
            files.push(sr_lint::SourceFile {
                l2: sr_lint::L2_FILES.contains(&rel.as_str()),
                path: rel,
                source,
            });
        }
        crates.push(sr_lint::CrateSources {
            name: (*name).to_string(),
            files,
        });
    }
    let report = sr_lint::lint_crates(&crates, &[]);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "L1/panic" && d.file == "crates/pager/src/pagefile.rs"),
        "seeded unwrap not caught: {:#?}",
        report.diagnostics
    );
}

fn walk(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}
