//! Self-check: the real workspace passes srlint clean, within the hatch
//! budget, and a seeded violation is caught.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint/ -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint")
        .to_path_buf()
}

#[test]
fn workspace_passes_srlint_clean() {
    let report = sr_lint::lint_workspace(&workspace_root()).expect("lint run");
    assert!(
        report.is_clean(),
        "srlint violations in the workspace:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn query_obs_and_exec_crates_are_under_the_lint_gate() {
    // The query hot path, the observability substrate, the batch
    // executor, and the serving stack must stay under the L1/L3 rules: a
    // regression that drops any of them from the configuration would
    // silently exempt the code most PRs touch.
    for name in ["query", "obs", "exec", "wire", "serve"] {
        assert!(
            sr_lint::LIB_CRATES.contains(&name),
            "{name} missing from LIB_CRATES"
        );
        assert!(
            workspace_root()
                .join("crates")
                .join(name)
                .join("src")
                .is_dir(),
            "crates/{name}/src missing on disk"
        );
    }
}

#[test]
fn hatch_budget_respected() {
    // The original acceptance bar was < 10 total hatches. The L1/assert
    // rule deliberately turns every release-mode `assert!` into a hatch
    // site, so each documented contract panic (constructor contracts in
    // sr-geometry, configuration checks in params/store) now spends one
    // hatch; the budget grows accordingly, but stays tight enough that a
    // PR cannot hatch its way around the gate wholesale.
    let report = sr_lint::lint_workspace(&workspace_root()).expect("lint run");
    assert!(
        report.hatches_used < 30,
        "{} hatches in use; the budget is < 30",
        report.hatches_used
    );
}

/// Lint the real workspace with `seed` appended to `seed_file` — the
/// shape of a PR that sneaks one bad change into otherwise-clean code.
fn lint_with_seed(seed_file: &str, seed: &str) -> sr_lint::LintReport {
    let root = workspace_root();
    let mut crates = Vec::new();
    let mut seeded = false;
    for name in sr_lint::LIB_CRATES {
        let dir = root.join("crates").join(name).join("src");
        let mut files = Vec::new();
        for entry in walk(&dir) {
            let rel = entry
                .strip_prefix(&root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            let mut source = std::fs::read_to_string(&entry).expect("read source");
            if rel == seed_file {
                source.push('\n');
                source.push_str(seed);
                source.push('\n');
                seeded = true;
            }
            files.push(sr_lint::SourceFile {
                l2: sr_lint::L2_FILES.contains(&rel.as_str()),
                path: rel,
                source,
            });
        }
        crates.push(sr_lint::CrateSources {
            name: (*name).to_string(),
            files,
        });
    }
    assert!(seeded, "seed target {seed_file} not found");
    sr_lint::lint_crates(&crates, &[])
}

#[track_caller]
fn assert_fires(report: &sr_lint::LintReport, rule: &str, file: &str) {
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == rule && d.file == file),
        "seeded {rule} violation in {file} not caught: {:#?}",
        report.diagnostics
    );
}

#[test]
fn seeded_unwrap_fails_the_gate() {
    let report = lint_with_seed(
        "crates/pager/src/pagefile.rs",
        "pub fn seeded(v: Option<u32>) -> u32 { v.unwrap() }",
    );
    assert_fires(&report, "L1/panic", "crates/pager/src/pagefile.rs");
}

#[test]
fn seeded_lock_order_inversion_fails_the_gate() {
    // Acquiring the meta mutex while a shard is held inverts the
    // declared `lock-order(meta < shard)` in pagefile.rs.
    let report = lint_with_seed(
        "crates/pager/src/pagefile.rs",
        "impl PageFile {\n    pub fn seeded_order(&self, id: PageId) -> Result<()> {\n        \
         let s = self.shard(id)?.lock();\n        let m = self.meta.lock();\n        \
         drop(m);\n        drop(s);\n        Ok(())\n    }\n}",
    );
    assert_fires(&report, "L4/lock-order", "crates/pager/src/pagefile.rs");
}

#[test]
fn seeded_io_under_guard_fails_the_gate() {
    // A store sync while holding the meta mutex — exactly the pattern
    // this PR moved out of flush() — must be flagged outside the
    // sanctioned read-through.
    let report = lint_with_seed(
        "crates/pager/src/pagefile.rs",
        "impl PageFile {\n    pub fn seeded_io(&self) -> Result<()> {\n        \
         let g = self.meta.lock();\n        self.store.sync()?;\n        \
         drop(g);\n        Ok(())\n    }\n}",
    );
    assert_fires(&report, "L4/lock-io", "crates/pager/src/pagefile.rs");
}

#[test]
fn seeded_unjustified_ordering_fails_the_gate() {
    let report = lint_with_seed(
        "crates/pager/src/store.rs",
        "pub fn seeded_load(x: &AtomicU64) -> u64 { x.load(Ordering::Relaxed) }",
    );
    assert_fires(&report, "L5/ordering", "crates/pager/src/store.rs");
}

#[test]
fn seeded_swallowed_error_fails_the_gate() {
    // `.ok()` on PageFile::set_user_meta discards a PagerError. (flush
    // would not do here: SpatialIndex::flush returns IndexError, so the
    // name is ambiguous workspace-wide and the registry drops it.)
    let report = lint_with_seed(
        "crates/pager/src/pagefile.rs",
        "pub fn seeded_swallow(pf: &PageFile) {\n    let _ = pf.set_user_meta(&[]).ok();\n}",
    );
    assert_fires(
        &report,
        "L6/swallowed-error",
        "crates/pager/src/pagefile.rs",
    );
}

fn walk(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn seeded_unguarded_access_fails_the_gate() {
    // Reading MetaState through a dropped guard binding: the guard
    // name still resolves to the meta class, but the lock is gone.
    let report = lint_with_seed(
        "crates/pager/src/pagefile.rs",
        "impl PageFile {\n    pub fn seeded_unguarded(&self) -> bool {\n        \
         let state = self.meta.lock();\n        drop(state);\n        \
         state.meta_dirty\n    }\n}",
    );
    assert_fires(
        &report,
        "L7/unguarded-access",
        "crates/pager/src/pagefile.rs",
    );
}

#[test]
fn seeded_missing_send_sync_note_fails_the_gate() {
    // A new lock-owning struct without a send-sync note — the shape of
    // a PR that adds shared state without auditing the boundary.
    let report = lint_with_seed(
        "crates/pager/src/pagefile.rs",
        "pub struct SeededShared {\n    inner: Mutex<u64>,\n}",
    );
    assert_fires(&report, "L8/missing-note", "crates/pager/src/pagefile.rs");
}

#[test]
fn seeded_guard_escape_fails_the_gate() {
    let report = lint_with_seed(
        "crates/pager/src/pagefile.rs",
        "impl PageFile {\n    pub fn seeded_escape(&self) -> crate::sync::MutexGuard<'_, MetaState> {\n        \
         self.meta.lock()\n    }\n}",
    );
    assert_fires(&report, "L4/guard-escape", "crates/pager/src/pagefile.rs");
}

#[test]
fn seeded_diagnostics_are_exact() {
    // The seeded L7/L8 violations must be pinpointed: exactly one new
    // finding each, on the seeded line, with the expected message.
    let seed = "impl PageFile {\n    pub fn seeded_unguarded(&self) -> PageId {\n        \
                let state = self.meta.lock();\n        drop(state);\n        \
                state.free_head\n    }\n}";
    let report = lint_with_seed("crates/pager/src/pagefile.rs", seed);
    let l7: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "L7/unguarded-access")
        .collect();
    assert_eq!(l7.len(), 1, "{:#?}", report.diagnostics);
    assert!(
        l7[0].message.contains("`free_head` is guarded by `meta`"),
        "{}",
        l7[0].message
    );

    let seed = "pub struct SeededShared {\n    inner: Mutex<u64>,\n    plain: u64,\n}";
    let report = lint_with_seed("crates/pager/src/pagefile.rs", seed);
    let l8: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule.starts_with("L8/"))
        .collect();
    assert_eq!(l8.len(), 1, "{:#?}", report.diagnostics);
    assert!(
        l8[0].message.contains("`SeededShared`"),
        "{}",
        l8[0].message
    );
}

#[test]
fn parallel_lint_is_byte_identical_to_serial() {
    // The thread count must never change the report: same diagnostics,
    // same order, same JSON bytes.
    let root = workspace_root();
    let mut crates = Vec::new();
    for name in sr_lint::LIB_CRATES {
        let dir = root.join("crates").join(name).join("src");
        let mut files = Vec::new();
        for entry in walk(&dir) {
            let rel = entry
                .strip_prefix(&root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            files.push(sr_lint::SourceFile {
                l2: sr_lint::L2_FILES.contains(&rel.as_str()),
                source: std::fs::read_to_string(&entry).expect("read source"),
                path: rel,
            });
        }
        crates.push(sr_lint::CrateSources {
            name: (*name).to_string(),
            files,
        });
    }
    let serial = sr_lint::lint_crates_with(&crates, &[], 1).to_json();
    for threads in [2, 3, 8, 64] {
        let parallel = sr_lint::lint_crates_with(&crates, &[], threads).to_json();
        assert_eq!(serial, parallel, "report drifted at {threads} threads");
    }
}

#[test]
fn seeded_tainted_alloc_fails_the_gate() {
    // An allocation sized straight from a page-header read, the shape
    // of a decoder that trusts its length prefix.
    let report = lint_with_seed(
        "crates/pager/src/leaf.rs",
        "pub fn seeded_taint(c: &mut ReadHeader) -> Result<Vec<u8>> {\n    \
         let n = usize::from(c.get_u16()?);\n    Ok(vec![0u8; n])\n}",
    );
    assert_fires(&report, "L9/tainted-alloc", "crates/pager/src/leaf.rs");
}

#[test]
fn seeded_unchecked_length_fails_the_gate() {
    // A wire-decoded count driving `split_at` with no bound check.
    let report = lint_with_seed(
        "crates/wire/src/frame.rs",
        "pub fn seeded_split(r: &mut Reader<'_>, buf: &[u8]) -> Result<(), WireError> {\n    \
         let n = r.u32()? as usize;\n    let (_a, _b) = buf.split_at(n);\n    Ok(())\n}",
    );
    assert_fires(&report, "L9/unchecked-length", "crates/wire/src/frame.rs");
}

#[test]
fn seeded_unchecked_offset_fails_the_gate() {
    // A WAL-decoded word used as a raw index.
    let report = lint_with_seed(
        "crates/pager/src/wal.rs",
        "pub fn seeded_index(buf: &[u8]) -> u8 {\n    \
         let off = rd_u32(buf, 0) as usize;\n    buf[off]\n}",
    );
    assert_fires(&report, "L9/unchecked-offset", "crates/pager/src/wal.rs");
}

#[test]
fn seeded_hot_alloc_fails_the_gate() {
    // A hot-marked kernel entry that clones its input, with the
    // allocation one call away so the chain rides the call graph.
    let report = lint_with_seed(
        "crates/geometry/src/kernel.rs",
        "// srlint: hot\npub fn seeded_hot_outer(xs: &[f32]) -> usize {\n    \
         seeded_inner(xs).len()\n}\n\n\
         pub fn seeded_inner(xs: &[f32]) -> Vec<f32> {\n    xs.to_vec()\n}",
    );
    assert_fires(&report, "L10/hot-alloc", "crates/geometry/src/kernel.rs");
}

#[test]
fn seeded_hot_lock_fails_the_gate() {
    let report = lint_with_seed(
        "crates/pager/src/pagefile.rs",
        "impl PageFile {\n    // srlint: hot\n    pub fn seeded_hot_lock(&self) -> PageId {\n        \
         let g = self.meta.lock();\n        g.free_head\n    }\n}",
    );
    assert_fires(&report, "L10/hot-lock", "crates/pager/src/pagefile.rs");
}

#[test]
fn seeded_hot_io_fails_the_gate() {
    let report = lint_with_seed(
        "crates/pager/src/pagefile.rs",
        "impl PageFile {\n    // srlint: hot\n    pub fn seeded_hot_io(&self) -> Result<()> {\n        \
         self.store.sync()\n    }\n}",
    );
    assert_fires(&report, "L10/hot-io", "crates/pager/src/pagefile.rs");
}

#[test]
fn per_pass_timings_cover_every_phase() {
    // The phase-sharing refactor parses each file once and reuses the
    // artifacts; the per-pass timing table is how a regression (a pass
    // silently re-parsing, or not running at all) becomes visible.
    let report = sr_lint::lint_workspace(&workspace_root()).expect("lint run");
    for phase in ["prep", "callgraph", "L9", "L10", "hygiene"] {
        assert!(
            report.timings.iter().any(|(name, _)| name == phase),
            "no timing recorded for phase {phase}: {:?}",
            report.timings.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
    }
}
