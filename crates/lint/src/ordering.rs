//! L5 — atomic-ordering audit.
//!
//! Every `Ordering::<variant>` argument in library code must be
//! justified by a `// srlint: ordering -- <reason>` note attached to
//! the same item. A note attaches to the innermost item containing its
//! line, and covers everything nested inside that item — so a note
//! just inside an `impl` justifies the whole impl, while a trailing
//! note on a statement justifies only that function. On the accounting
//! files (the counters behind the paper's misses == physical-reads
//! exactness claim), `Relaxed` additionally requires the note's reason
//! to spell out the invariant (the reason must contain the word
//! `invariant`). Notes that justify nothing are themselves flagged.
//!
//! Only the five atomic variants are matched, so `std::cmp::Ordering`
//! paths (`Ordering::Less` and friends, heavy in the query crates)
//! never trip the rule.

use crate::lexer::{Kind, Lexed};
use crate::parser::Item;
use crate::Diagnostic;

/// Atomic variants of `std::sync::atomic::Ordering`.
const ATOMIC_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Line span of an item (attributes included).
#[derive(Clone, Copy, Debug)]
struct Span {
    start: u32,
    end: u32,
}

impl Span {
    fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }

    fn len(&self) -> u32 {
        self.end.saturating_sub(self.start)
    }
}

/// Innermost item span containing `line`, if any.
fn innermost(spans: &[Span], line: u32) -> Option<Span> {
    spans
        .iter()
        .filter(|s| s.contains(line))
        .min_by_key(|s| s.len())
        .copied()
}

fn collect_spans(items: &[Item], lexed: &Lexed, out: &mut Vec<Span>) {
    for item in items {
        out.push(Span {
            start: item.start_line(&lexed.tokens),
            end: item.end_line(&lexed.tokens),
        });
        collect_spans(&item.children, lexed, out);
    }
}

/// Run the L5 pass over one parsed file. `accounting` marks files
/// feeding the misses == physical-reads bookkeeping.
pub fn l5_ordering(
    path: &str,
    lexed: &mut Lexed,
    items: &[Item],
    accounting: bool,
    diags: &mut Vec<Diagnostic>,
) {
    let mut spans = Vec::new();
    collect_spans(items, lexed, &mut spans);

    // Precompute each note's coverage span (whole file when the note
    // sits outside every item).
    let note_spans: Vec<Option<Span>> = lexed
        .ordering_notes
        .iter()
        .map(|n| innermost(&spans, n.line))
        .collect();

    // Find `Ordering::<atomic variant>` uses outside test code.
    let mut sites: Vec<(u32, u32, String)> = Vec::new();
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != Kind::Ident || !ATOMIC_VARIANTS.contains(&t.text.as_str()) {
            continue;
        }
        let path_ok = i >= 3
            && lexed.tokens[i - 1].is_punct(':')
            && lexed.tokens[i - 2].is_punct(':')
            && lexed.tokens[i - 3].is_ident("Ordering");
        if !path_ok || lexed.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        sites.push((t.line, t.col, t.text.clone()));
    }

    for (line, col, variant) in sites {
        // A note covers the site when the note's own item (or the whole
        // file, for top-level notes) contains the site's line.
        let mut justified = false;
        let mut invariant_note = false;
        for (n, span) in lexed.ordering_notes.iter_mut().zip(&note_spans) {
            let covers = span.is_none_or(|s| s.contains(line));
            if covers {
                n.used = true;
                justified = true;
                invariant_note |= n.reason.contains("invariant");
            }
        }
        if !justified {
            if !lexed.allow("ordering", line) {
                diags.push(Diagnostic {
                    file: path.to_string(),
                    line,
                    col,
                    rule: "L5/ordering".to_string(),
                    message: format!(
                        "`Ordering::{variant}` without a `// srlint: ordering -- <reason>` \
                         note on the enclosing item"
                    ),
                });
            }
        } else if accounting
            && variant == "Relaxed"
            && !invariant_note
            && !lexed.allow("ordering-relaxed", line)
        {
            diags.push(Diagnostic {
                file: path.to_string(),
                line,
                col,
                rule: "L5/ordering-relaxed".to_string(),
                message: "`Ordering::Relaxed` on accounting state needs an ordering note \
                          stating the invariant it preserves (reason must name the \
                          `invariant`)"
                    .to_string(),
            });
        }
    }

    let unused: Vec<(u32, u32)> = lexed
        .ordering_notes
        .iter()
        .filter(|n| !n.used)
        .map(|n| (n.line, n.col))
        .collect();
    for (line, col) in unused {
        if !lexed.allow("ordering-unused", line) {
            diags.push(Diagnostic {
                file: path.to_string(),
                line,
                col,
                rule: "L5/ordering-unused".to_string(),
                message: "srlint ordering note justifies no `Ordering::` use; remove it"
                    .to_string(),
            });
        }
    }
}
