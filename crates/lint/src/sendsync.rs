//! L8 — Send/Sync boundary audit.
//!
//! The batch executor (`sr-exec`) shares trees and the pager across a
//! `std::thread::scope`; anything that crosses that boundary is relied
//! on for `Send + Sync`. Under the workspace-wide `forbid(unsafe_code)`
//! those impls are always compiler-derived, so the audit is about
//! *visibility*: every boundary type must carry an item-scoped
//! `// srlint: send-sync -- <reason>` note stating why concurrent
//! access is sound, and the note is what arms the L7 unprotected-shared
//! check on its fields.
//!
//! Rules:
//!
//! * **L8/unsafe-impl** — a literal `unsafe impl Send/Sync`. Must be
//!   zero in this workspace; if one ever appears it needs a hatch with
//!   a reason, which is exactly the paper trail we want.
//! * **L8/missing-note** — a struct that crosses the pool boundary
//!   (the known executor-shared types) or owns synchronization state
//!   (lock/atomic fields) without a send-sync note.
//! * **L8/interior-mutability** — a raw-pointer / `Cell` / `RefCell` /
//!   `UnsafeCell` / `Rc` field in a (would-be) noted struct: these
//!   defeat or forbid `Sync` and need restructuring, not a note.
//! * **L8/send-sync-unused** — a note attached to no struct.

use std::collections::BTreeSet;

use crate::parser::{Item, ItemKind};
use crate::{Diagnostic, ParsedFile};

/// Types handed across the executor's thread scope: the pager, the
/// stats recorder, and the five tree structs behind `SpatialIndex`.
pub const BOUNDARY_TYPES: &[&str] = &[
    "PageFile",
    "StatsRecorder",
    "SrTree",
    "SsTree",
    "RstarTree",
    "KdbTree",
    "VamTree",
];

/// Attach send-sync notes to structs (marking `StructInfo::has_note`)
/// and return the workspace-wide set of noted struct names. Runs over
/// ALL files before the per-crate passes so cross-crate fields
/// (`pf: PageFile` inside each tree) resolve as self-protecting.
pub fn collect_noted(files: &mut [ParsedFile]) -> BTreeSet<String> {
    let mut noted = BTreeSet::new();
    for f in files.iter_mut() {
        for note in f.lexed.send_sync_notes.iter_mut() {
            // A note belongs to the struct whose span contains it, or
            // whose first line is the next code line it covers.
            let target = f
                .structs
                .iter_mut()
                .find(|s| {
                    (s.start_line <= note.line && note.line <= s.end_line)
                        || s.start_line == note.covers[1]
                })
                .map(|s| {
                    s.has_note = true;
                    s.name.clone()
                });
            if let Some(name) = target {
                note.used = true;
                noted.insert(name);
            }
        }
    }
    noted
}

/// Run the L8 audit over one file.
pub fn l8_boundary(f: &mut ParsedFile, diags: &mut Vec<Diagnostic>) {
    let path = f.path.clone();

    // Literal `unsafe impl Send/Sync`.
    let mut unsafe_impls = Vec::new();
    find_unsafe_impls(&f.items, &f.lexed, &mut unsafe_impls);
    for (line, col, trait_name, ty) in unsafe_impls {
        if !f.lexed.allow("unsafe-impl", line) {
            diags.push(Diagnostic {
                file: path.clone(),
                line,
                col,
                rule: "L8/unsafe-impl".to_string(),
                message: format!(
                    "`unsafe impl {trait_name}` for `{ty}`: hand-written thread-safety claims \
                     are forbidden here; make the type structurally Send/Sync instead"
                ),
            });
        }
    }

    let mut missing = Vec::new();
    let mut interior = Vec::new();
    for s in &f.structs {
        let owns_sync = s.fields.iter().any(|fld| {
            fld.type_idents
                .iter()
                .any(|t| t.starts_with("Atomic") || t == "Mutex" || t == "RwLock" || t == "Condvar")
        });
        let needs_note = BOUNDARY_TYPES.contains(&s.name.as_str()) || owns_sync;
        if needs_note && !s.has_note {
            missing.push((s.line, s.col, s.name.clone(), owns_sync));
        }
        if needs_note || s.has_note {
            for fld in &s.fields {
                let bad = fld.has_raw_ptr
                    || fld
                        .type_idents
                        .iter()
                        .any(|t| t == "Cell" || t == "RefCell" || t == "UnsafeCell" || t == "Rc");
                if bad {
                    interior.push((fld.line, fld.col, s.name.clone(), fld.name.clone()));
                }
            }
        }
    }
    for (line, col, name, owns_sync) in missing {
        if !f.lexed.allow("missing-note", line) {
            let why = if owns_sync {
                "owns synchronization state"
            } else {
                "crosses the executor thread boundary"
            };
            diags.push(Diagnostic {
                file: path.clone(),
                line,
                col,
                rule: "L8/missing-note".to_string(),
                message: format!(
                    "`{name}` {why} but has no `// srlint: send-sync -- <reason>` note stating \
                     why concurrent access is sound"
                ),
            });
        }
    }
    for (line, col, sname, fname) in interior {
        if !f.lexed.allow("interior-mutability", line) {
            diags.push(Diagnostic {
                file: path.clone(),
                line,
                col,
                rule: "L8/interior-mutability".to_string(),
                message: format!(
                    "field `{fname}` of boundary type `{sname}` uses non-Sync interior \
                     mutability (raw pointer / Cell / RefCell / Rc); use a lock or atomic"
                ),
            });
        }
    }

    // Orphaned notes.
    let mut orphans = Vec::new();
    for note in &f.lexed.send_sync_notes {
        if !note.used {
            orphans.push((note.line, note.col));
        }
    }
    for (line, col) in orphans {
        if !f.lexed.allow("send-sync-unused", line) {
            diags.push(Diagnostic {
                file: path.clone(),
                line,
                col,
                rule: "L8/send-sync-unused".to_string(),
                message: "send-sync note attaches to no struct; place it directly above the \
                          struct it vouches for"
                    .to_string(),
            });
        }
    }
}

fn find_unsafe_impls(
    items: &[Item],
    lexed: &crate::lexer::Lexed,
    out: &mut Vec<(u32, u32, String, String)>,
) {
    for item in items {
        if item.kind == ItemKind::Impl
            && item.is_unsafe
            && !lexed.test_mask.get(item.first).copied().unwrap_or(false)
        {
            if let Some(t) = item
                .impl_trait
                .iter()
                .find(|t| *t == "Send" || *t == "Sync")
            {
                out.push((item.line, item.col, t.clone(), item.impl_ty.join("::")));
            }
        }
        find_unsafe_impls(&item.children, lexed, out);
    }
}
