//! L4 — lock-discipline analysis over the parsed item tree, plus the
//! held-set walk the L7 guarded-by pass piggybacks on.
//!
//! The pass models guard lifetimes syntactically: a *binding* guard
//! (`let g = x.lock();`, where the acquisition is the whole
//! initializer) lives to the end of its enclosing block or an explicit
//! `drop(g)`, whichever comes first; `let g2 = g;` moves the guard to
//! the new name; any other acquisition is a *temporary* guard that
//! covers the rest of its statement. An acquisition is a zero-argument
//! `.lock()` / `.read()` / `.write()` call; the lock *class* is the
//! receiver name (`self.meta.lock()` → `meta`, `self.shard(id)?.lock()`
//! → `shard`, `self.0.lock()` → `0`).
//!
//! Four rules come out of the model:
//!
//! * **L4/lock-order** — acquiring class `a` while holding class `b`
//!   when a `// srlint: lock-order(a < b) -- reason` declaration says
//!   `a` must come first.
//! * **L4/lock-io** — calling an I/O function (a name in the pager
//!   registry or any function carrying `#[doc = "srlint: io"]`) while
//!   a guard is held. The sanctioned read-through hatches this with
//!   `allow(lock-io)`.
//! * **L4/lock-cycle** — a cycle in the crate-wide acquisition graph
//!   (edges `held → acquired`, including edges induced through direct
//!   calls into functions that acquire locks; callees named `lock` /
//!   `read` / `write` are skipped so the std-wrapper shims do not
//!   alias every lock to their inner class).
//! * **L4/guard-escape** — a guard that leaves its function: `return g`
//!   / a bare `g` tail expression for a held binding, or an acquisition
//!   in return/tail position. Functions named `lock`/`read`/`write`
//!   (the std-wrapper shims, whose whole point is returning a guard)
//!   are exempt.
//!
//! The walk also carries the L7 guarded-by field check ([`crate::guarded`]):
//! at every field access whose receiver type is known (`self` inside an
//! impl, a parameter typed as a guarded struct, a guard binding, or a
//! fresh `.lock()` temporary), the field's declared lock must be in the
//! held set. A function taking a guarded struct by reference starts
//! with that struct's locks *assumed* held — handing out `&MetaState`
//! is only possible while `meta` is locked — and assumed guards do not
//! feed order checks or the acquisition graph.
//!
//! Known approximation, by convention rather than analysis: `drop(g)`
//! releases the guard for the remainder of the function even when the
//! drop sits inside a conditional — pair conditional drops with an
//! immediate `return`.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::guarded::FieldMaps;
use crate::lexer::{Kind, Lexed, Token};
use crate::parser::{Block, Stmt};
use crate::{Diagnostic, ParsedFile};

/// Methods whose zero-argument calls acquire a guard.
pub(crate) const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// A held guard during the body walk.
struct Guard {
    class: String,
    /// Binding name for `let`-bound guards; `None` for temporaries.
    binding: Option<String>,
    temp: bool,
    /// Held by assumption (guarded-struct parameter), not by an
    /// acquisition in this body: satisfies L7, invisible to L4.
    assumed: bool,
}

/// What the walk knows about a local name, for L7 receiver resolution.
/// Entries persist to the end of the function (past `drop`), so an
/// access through a dead guard binding still resolves — and fires.
enum Local {
    /// Parameter typed as a struct with guarded fields.
    Guarded(String),
    /// A guard binding for this lock class.
    Guard(String),
}

/// Where an edge was first observed.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Site {
    file: String,
    line: u32,
    col: u32,
}

/// Everything shared across one function walk.
struct WalkCtx<'a> {
    path: &'a str,
    io_fns: &'a HashSet<String>,
    decls: &'a [(String, String)],
    summaries: &'a BTreeMap<String, BTreeSet<String>>,
    maps: &'a FieldMaps,
    fn_name: String,
    self_ty: Option<String>,
    locals: BTreeMap<String, Local>,
}

/// Run the L4 pass (and the L7 field-access check) over one crate's
/// parsed files. `io_fns` is the workspace I/O registry (built-in names
/// plus `#[doc = "srlint: io"]` markers); `decls` the crate's
/// `lock-order(a < b)` declarations; `maps` the crate's field→lock
/// annotations from [`crate::guarded`].
pub fn l4_locks(
    files: &mut [ParsedFile],
    io_fns: &HashSet<String>,
    decls: &[(String, String)],
    maps: &FieldMaps,
    diags: &mut Vec<Diagnostic>,
) {
    // Phase 1: per-function direct acquisitions and callees, for the
    // interprocedural summaries.
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in files.iter() {
        for fm in &f.fns {
            if fm.is_test {
                continue;
            }
            let (acq, callees) = scan_flat(&f.lexed.tokens, fm.body.open + 1, fm.body.close);
            direct.entry(fm.name.clone()).or_default().extend(acq);
            calls.entry(fm.name.clone()).or_default().extend(callees);
        }
    }
    let mut summaries = direct;
    loop {
        let mut changed = false;
        for (f, cs) in &calls {
            let mut add = BTreeSet::new();
            for c in cs {
                if LOCK_METHODS.contains(&c.as_str()) {
                    continue;
                }
                if let Some(s) = summaries.get(c) {
                    add.extend(s.iter().cloned());
                }
            }
            let entry = summaries.entry(f.clone()).or_default();
            for a in add {
                changed |= entry.insert(a);
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 2: guard-tracking walk, emitting order/io/escape/guarded
    // diagnostics and collecting the acquisition graph.
    let mut edges: BTreeMap<(String, String), Site> = BTreeMap::new();
    for f in files.iter_mut() {
        // Split borrows: walk the shared fn registry immutably while
        // the lexed side stays mutable for hatch consumption.
        let ParsedFile {
            path, lexed, fns, ..
        } = f;
        for fm in fns.iter() {
            if fm.is_test {
                continue;
            }
            let mut ctx = WalkCtx {
                path,
                io_fns,
                decls,
                summaries: &summaries,
                maps,
                fn_name: fm.name.clone(),
                self_ty: fm.self_ty.clone(),
                locals: BTreeMap::new(),
            };
            let mut held: Vec<Guard> = Vec::new();
            // A parameter typed as a guarded struct can only exist while
            // that struct's locks are held by the caller.
            for (pname, tidents) in &fm.params {
                let Some(ty) = tidents.iter().find(|t| maps.has_struct(t)) else {
                    continue;
                };
                ctx.locals.insert(pname.clone(), Local::Guarded(ty.clone()));
                for class in maps.classes_of(ty) {
                    if class != "owner" && !held.iter().any(|g| g.class == class) {
                        held.push(Guard {
                            class,
                            binding: None,
                            temp: false,
                            assumed: true,
                        });
                    }
                }
            }
            walk_block(
                &fm.body, &mut ctx, lexed, &mut held, &mut edges, diags, true,
            );
        }
    }

    // Phase 3: cycles in the acquisition graph.
    report_cycles(&edges, files, diags);
}

/// Flat scan of a token range for acquisitions (classes) and call
/// names — no guard tracking; feeds the summaries.
fn scan_flat(tokens: &[Token], start: usize, end: usize) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut acq = BTreeSet::new();
    let mut callees = BTreeSet::new();
    for k in start..end.min(tokens.len()) {
        let t = &tokens[k];
        if t.kind != Kind::Ident || !tokens.get(k + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if is_acquisition(tokens, k) {
            if let Some(class) = receiver_class(tokens, k - 1) {
                acq.insert(class);
            }
        } else {
            callees.insert(t.text.clone());
        }
    }
    (acq, callees)
}

/// Is the ident at `k` (known to be followed by `(`) a zero-argument
/// lock acquisition method call?
pub(crate) fn is_acquisition(tokens: &[Token], k: usize) -> bool {
    LOCK_METHODS.contains(&tokens[k].text.as_str())
        && k > 0
        && tokens[k - 1].is_punct('.')
        && tokens.get(k + 2).is_some_and(|t| t.is_punct(')'))
}

/// The lock class of the receiver ending at the `.` at `dot`: the
/// nearest name, walking back over `?` and call parentheses.
pub(crate) fn receiver_class(tokens: &[Token], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    loop {
        let t = tokens.get(j)?;
        if t.is_punct('?') {
            j = j.checked_sub(1)?;
            continue;
        }
        if t.is_punct(')') {
            let mut depth = 0i32;
            while j > 0 {
                if tokens[j].is_punct(')') {
                    depth += 1;
                } else if tokens[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            // Step over the call name to its receiver `.`, then once
            // more to the field/name that classifies the lock.
            j = j.checked_sub(1)?;
            continue;
        }
        return match t.kind {
            Kind::Ident | Kind::Num => Some(t.text.clone()),
            _ => None,
        };
    }
}

fn walk_block(
    block: &Block,
    ctx: &mut WalkCtx<'_>,
    lexed: &mut Lexed,
    held: &mut Vec<Guard>,
    edges: &mut BTreeMap<(String, String), Site>,
    diags: &mut Vec<Diagnostic>,
    fn_tail: bool,
) {
    let base = held.len();
    let n = block.stmts.len();
    for (si, stmt) in block.stmts.iter().enumerate() {
        let is_tail =
            fn_tail && si + 1 == n && !lexed.tokens.get(stmt.last).is_some_and(|t| t.is_punct(';'));
        scan_stmt(stmt, ctx, lexed, held, edges, diags, is_tail);
    }
    if held.len() > base {
        held.truncate(base);
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_stmt(
    stmt: &Stmt,
    ctx: &mut WalkCtx<'_>,
    lexed: &mut Lexed,
    held: &mut Vec<Guard>,
    edges: &mut BTreeMap<(String, String), Site>,
    diags: &mut Vec<Diagnostic>,
    is_tail: bool,
) {
    // Guard move: `let g2 = g;` renames a held binding guard.
    if let Some(new_name) = &stmt.let_name {
        if let Some(moved) = rebind_source(&lexed.tokens, stmt) {
            if let Some(g) = held
                .iter_mut()
                .find(|g| g.binding.as_deref() == Some(moved.as_str()))
            {
                g.binding = Some(new_name.clone());
                let class = g.class.clone();
                ctx.locals.insert(new_name.clone(), Local::Guard(class));
            }
        }
    }

    let stmt_base = held.len();
    let mut k = stmt.first;
    let mut bi = 0;
    while k <= stmt.last {
        if bi < stmt.blocks.len() && k == stmt.blocks[bi].open {
            let b = stmt.blocks[bi].clone();
            walk_block(&b, ctx, lexed, held, edges, diags, false);
            k = b.close + 1;
            bi += 1;
            continue;
        }
        let Some(t) = lexed.tokens.get(k) else { break };
        let followed_by_paren = lexed.tokens.get(k + 1).is_some_and(|n| n.is_punct('('));
        if t.kind == Kind::Ident && followed_by_paren {
            if is_acquisition(&lexed.tokens, k) {
                let class = receiver_class(&lexed.tokens, k - 1).unwrap_or_default();
                let (line, col) = (t.line, t.col);
                on_acquire(
                    &class, None, ctx.path, line, col, lexed, ctx.decls, held, edges, diags,
                );
                // Binding guard iff this is a `let` initializer and the
                // acquisition is the whole tail of the statement
                // (modulo `?` and the terminator).
                let binding = stmt.let_name.clone().filter(|_| {
                    (k + 3..=stmt.last).all(|j| {
                        lexed
                            .tokens
                            .get(j)
                            .is_none_or(|t| t.is_punct('?') || t.is_punct(';'))
                    })
                });
                if let Some(b) = &binding {
                    ctx.locals.insert(b.clone(), Local::Guard(class.clone()));
                }
                held.push(Guard {
                    class,
                    temp: binding.is_none(),
                    binding,
                    assumed: false,
                });
            } else {
                let name = t.text.clone();
                let (line, col) = (t.line, t.col);
                if name == "drop" {
                    if let Some(arg) = lexed.tokens.get(k + 2).filter(|a| a.kind == Kind::Ident) {
                        let arg = arg.text.clone();
                        held.retain(|g| g.binding.as_deref() != Some(arg.as_str()));
                    }
                } else if held.iter().any(|g| !g.assumed) {
                    if ctx.io_fns.contains(&name) {
                        let classes: Vec<&str> = held
                            .iter()
                            .filter(|g| !g.assumed)
                            .map(|g| g.class.as_str())
                            .collect();
                        if !lexed.allow("lock-io", line) {
                            diags.push(Diagnostic {
                                file: ctx.path.to_string(),
                                line,
                                col,
                                rule: "L4/lock-io".to_string(),
                                message: format!(
                                    "I/O call `{name}()` while holding lock `{}`; move the I/O \
                                     outside the guard (only the sanctioned read-through may \
                                     hatch this)",
                                    classes.join("`, `")
                                ),
                            });
                        }
                    }
                    if !LOCK_METHODS.contains(&name.as_str()) {
                        if let Some(classes) = ctx.summaries.get(&name) {
                            for class in classes.clone() {
                                on_acquire(
                                    &class,
                                    Some(&name),
                                    ctx.path,
                                    line,
                                    col,
                                    lexed,
                                    ctx.decls,
                                    held,
                                    edges,
                                    diags,
                                );
                            }
                        }
                    }
                }
            }
        } else if (t.kind == Kind::Ident || t.kind == Kind::Num) && !followed_by_paren {
            check_field_access(k, ctx, lexed, held, diags);
        }
        k += 1;
    }

    check_guard_escape(stmt, ctx, lexed, held, diags, is_tail);

    // Temporaries die at the end of their statement; bindings survive
    // to the end of the block.
    let mut idx = stmt_base;
    while idx < held.len() {
        if held[idx].temp {
            held.remove(idx);
        } else {
            idx += 1;
        }
    }
}

/// If `stmt` is `let new = old;` with a bare-identifier initializer,
/// return `old`.
fn rebind_source(tokens: &[Token], stmt: &Stmt) -> Option<String> {
    let mut j = stmt.first + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    if !tokens.get(j + 1)?.is_punct('=') {
        return None;
    }
    let mut last = stmt.last;
    if tokens.get(last).is_some_and(|t| t.is_punct(';')) {
        last = last.checked_sub(1)?;
    }
    if last != j + 2 {
        return None;
    }
    let src = tokens.get(last)?;
    (src.kind == Kind::Ident).then(|| src.text.clone())
}

/// L7/unguarded-access: the field access at token `k` (ident/num with a
/// `.` before it and no call parens after), when its receiver's type is
/// known, must happen with the field's declared lock held.
fn check_field_access(
    k: usize,
    ctx: &mut WalkCtx<'_>,
    lexed: &mut Lexed,
    held: &[Guard],
    diags: &mut Vec<Diagnostic>,
) {
    if k < 2 || !lexed.tokens[k - 1].is_punct('.') {
        return;
    }
    let field = lexed.tokens[k].text.clone();
    let recv = &lexed.tokens[k - 2];
    let required: Option<String> = if recv.is_ident("self") {
        ctx.self_ty
            .as_deref()
            .and_then(|ty| ctx.maps.lock_of(ty, &field))
            .map(str::to_string)
    } else if recv.kind == Kind::Ident {
        match ctx.locals.get(&recv.text) {
            Some(Local::Guarded(ty)) => ctx.maps.lock_of(ty, &field).map(str::to_string),
            Some(Local::Guard(class)) => Some(class.clone()),
            None => None,
        }
    } else if recv.is_punct(')') {
        // `x.lock().field`: the receiver is a fresh temporary guard.
        let open = open_paren_of(&lexed.tokens, k - 2);
        match open.checked_sub(1) {
            Some(m) if is_acquisition(&lexed.tokens, m) => receiver_class(&lexed.tokens, m - 1),
            _ => None,
        }
    } else {
        None
    };
    let Some(class) = required else { return };
    if class == "owner" || held.iter().any(|g| g.class == class) {
        return;
    }
    let (line, col) = (lexed.tokens[k].line, lexed.tokens[k].col);
    if !lexed.allow("unguarded-access", line) {
        diags.push(Diagnostic {
            file: ctx.path.to_string(),
            line,
            col,
            rule: "L7/unguarded-access".to_string(),
            message: format!(
                "field `{field}` is guarded by `{class}`, which is not held here; \
                 acquire `{class}` (or restructure so the access happens under the guard)"
            ),
        });
    }
}

/// Index of the `(` matching the `)` at `close` (walking backwards).
fn open_paren_of(tokens: &[Token], close: usize) -> usize {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        if tokens[j].is_punct(')') {
            depth += 1;
        } else if tokens[j].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        match j.checked_sub(1) {
            Some(p) => j = p,
            None => return 0,
        }
    }
}

/// L4/guard-escape: a guard leaving the function via `return` or the
/// tail expression.
fn check_guard_escape(
    stmt: &Stmt,
    ctx: &WalkCtx<'_>,
    lexed: &mut Lexed,
    held: &[Guard],
    diags: &mut Vec<Diagnostic>,
    is_tail: bool,
) {
    // The std-wrapper shims exist to return guards.
    if LOCK_METHODS.contains(&ctx.fn_name.as_str()) {
        return;
    }
    let is_return = lexed
        .tokens
        .get(stmt.first)
        .is_some_and(|t| t.is_ident("return"));
    if !is_return && !is_tail {
        return;
    }
    let mut last = stmt.last;
    if lexed.tokens.get(last).is_some_and(|t| t.is_punct(';')) {
        last = last.saturating_sub(1);
    }
    let expr_first = if is_return {
        stmt.first + 1
    } else {
        stmt.first
    };
    if last < expr_first {
        return;
    }
    // Shape 1: a bare identifier naming a held binding guard.
    let escaped: Option<(String, u32, u32)> = if last == expr_first {
        let t = &lexed.tokens[last];
        held.iter()
            .find(|g| !g.assumed && g.binding.as_deref() == Some(t.text.as_str()))
            .map(|g| (g.class.clone(), t.line, t.col))
    // Shape 2: the returned value IS a fresh acquisition (`return
    // self.meta.lock();` / tail `self.meta.lock()`).
    } else if last >= 2
        && lexed.tokens[last].is_punct(')')
        && is_acquisition(&lexed.tokens, last - 2)
    {
        let m = last - 2;
        receiver_class(&lexed.tokens, m - 1).map(|c| {
            let t = &lexed.tokens[m];
            (c, t.line, t.col)
        })
    } else {
        None
    };
    let Some((class, line, col)) = escaped else {
        return;
    };
    if !lexed.allow("guard-escape", line) {
        diags.push(Diagnostic {
            file: ctx.path.to_string(),
            line,
            col,
            rule: "L4/guard-escape".to_string(),
            message: format!(
                "guard for lock `{class}` escapes `{}()`; callers inherit a held lock the \
                 analysis cannot see — return the data, not the guard",
                ctx.fn_name
            ),
        });
    }
}

/// Record edges and check declared orders for one acquisition of
/// `class` (directly, or through a call to `via`). Assumed guards are
/// skipped: they are a caller's obligation, not an acquisition here.
#[allow(clippy::too_many_arguments)]
fn on_acquire(
    class: &str,
    via: Option<&str>,
    path: &str,
    line: u32,
    col: u32,
    lexed: &mut Lexed,
    decls: &[(String, String)],
    held: &[Guard],
    edges: &mut BTreeMap<(String, String), Site>,
    diags: &mut Vec<Diagnostic>,
) {
    for g in held.iter().filter(|g| !g.assumed) {
        edges
            .entry((g.class.clone(), class.to_string()))
            .or_insert(Site {
                file: path.to_string(),
                line,
                col,
            });
        let violated = decls
            .iter()
            .any(|(earlier, later)| earlier == class && later == &g.class);
        if violated && !lexed.allow("lock-order", line) {
            let how = match via {
                Some(callee) => format!("call to `{callee}()` acquires lock `{class}`"),
                None => format!("lock `{class}` acquired"),
            };
            diags.push(Diagnostic {
                file: path.to_string(),
                line,
                col,
                rule: "L4/lock-order".to_string(),
                message: format!(
                    "{how} while `{}` is held; declared order is `{class} < {}`",
                    g.class, g.class
                ),
            });
        }
    }
}

/// Detect cycles in the acquisition graph and report one diagnostic
/// per strongly connected component, anchored at its smallest site.
fn report_cycles(
    edges: &BTreeMap<(String, String), Site>,
    files: &mut [ParsedFile],
    diags: &mut Vec<Diagnostic>,
) {
    let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        succ.entry(a.as_str()).or_default().insert(b.as_str());
    }
    // Transitive closure by BFS from every node (the graph is tiny).
    let mut reach: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for &n in succ.keys() {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<&str> = succ
            .get(n)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        while let Some(m) = stack.pop() {
            if seen.insert(m) {
                if let Some(next) = succ.get(m) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        reach.insert(n, seen);
    }
    // Nodes on a cycle reach themselves; group them into SCCs.
    let cyclic: Vec<&str> = reach
        .iter()
        .filter(|(n, r)| r.contains(**n))
        .map(|(n, _)| *n)
        .collect();
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    for &n in &cyclic {
        if assigned.contains(n) {
            continue;
        }
        let scc: Vec<&str> = cyclic
            .iter()
            .copied()
            .filter(|&m| m == n || (reach[n].contains(m) && reach[m].contains(n)))
            .collect();
        assigned.extend(scc.iter().copied());
        // Internal edges of the SCC, anchored at the earliest site.
        let site = edges
            .iter()
            .filter(|((a, b), _)| scc.contains(&a.as_str()) && scc.contains(&b.as_str()))
            .map(|(_, s)| s.clone())
            .min();
        let Some(site) = site else { continue };
        let cycle = {
            let mut c: Vec<&str> = scc.clone();
            c.sort_unstable();
            let mut p = c.join(" -> ");
            p.push_str(" -> ");
            p.push_str(c[0]);
            p
        };
        let allowed = files
            .iter_mut()
            .find(|f| f.path == site.file)
            .is_some_and(|f| f.lexed.allow("lock-cycle", site.line));
        if !allowed {
            diags.push(Diagnostic {
                file: site.file,
                line: site.line,
                col: site.col,
                rule: "L4/lock-cycle".to_string(),
                message: format!("lock acquisition cycle: {cycle}"),
            });
        }
    }
}
