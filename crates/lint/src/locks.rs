//! L4 — lock-discipline analysis over the parsed item tree.
//!
//! The pass models guard lifetimes syntactically: a *binding* guard
//! (`let g = x.lock();`, where the acquisition is the whole
//! initializer) lives to the end of its enclosing block or an explicit
//! `drop(g)`, whichever comes first; any other acquisition is a
//! *temporary* guard that covers the rest of its statement. An
//! acquisition is a zero-argument `.lock()` / `.read()` / `.write()`
//! call; the lock *class* is the receiver name (`self.meta.lock()` →
//! `meta`, `self.shard(id)?.lock()` → `shard`, `self.0.lock()` → `0`).
//!
//! Three rules come out of the model:
//!
//! * **L4/lock-order** — acquiring class `a` while holding class `b`
//!   when a `// srlint: lock-order(a < b) -- reason` declaration says
//!   `a` must come first.
//! * **L4/lock-io** — calling an I/O function (a name in the pager
//!   registry or any function carrying `#[doc = "srlint: io"]`) while
//!   a guard is held. The sanctioned read-through hatches this with
//!   `allow(lock-io)`.
//! * **L4/lock-cycle** — a cycle in the crate-wide acquisition graph
//!   (edges `held → acquired`, including edges induced through direct
//!   calls into functions that acquire locks; callees named `lock` /
//!   `read` / `write` are skipped so the std-wrapper shims do not
//!   alias every lock to their inner class).
//!
//! Known approximation, by convention rather than analysis: `drop(g)`
//! releases the guard for the remainder of the function even when the
//! drop sits inside a conditional — pair conditional drops with an
//! immediate `return`.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::lexer::{Kind, Lexed, Token};
use crate::parser::{Block, Item, ItemKind, Stmt};
use crate::{Diagnostic, ParsedFile};

/// Methods whose zero-argument calls acquire a guard.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// A held guard during the body walk.
struct Guard {
    class: String,
    /// Binding name for `let`-bound guards; `None` for temporaries.
    binding: Option<String>,
    temp: bool,
}

/// Where an edge was first observed.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Site {
    file: String,
    line: u32,
    col: u32,
}

/// Run the L4 pass over one crate's parsed files. `io_fns` is the
/// workspace I/O registry (built-in names plus `#[doc = "srlint: io"]`
/// markers); `decls` the crate's `lock-order(a < b)` declarations.
pub fn l4_locks(
    files: &mut [ParsedFile],
    io_fns: &HashSet<String>,
    decls: &[(String, String)],
    diags: &mut Vec<Diagnostic>,
) {
    // Phase 1: per-function direct acquisitions and callees, for the
    // interprocedural summaries.
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in files.iter() {
        for_each_fn(&f.items, &mut |item| {
            if is_test_item(item, &f.lexed) {
                return;
            }
            let Some(body) = &item.body else { return };
            let (acq, callees) = scan_flat(&f.lexed.tokens, body.open + 1, body.close);
            direct.entry(item.name.clone()).or_default().extend(acq);
            calls.entry(item.name.clone()).or_default().extend(callees);
        });
    }
    let mut summaries = direct;
    loop {
        let mut changed = false;
        for (f, cs) in &calls {
            let mut add = BTreeSet::new();
            for c in cs {
                if LOCK_METHODS.contains(&c.as_str()) {
                    continue;
                }
                if let Some(s) = summaries.get(c) {
                    add.extend(s.iter().cloned());
                }
            }
            let entry = summaries.entry(f.clone()).or_default();
            for a in add {
                changed |= entry.insert(a);
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 2: guard-tracking walk, emitting order/io diagnostics and
    // collecting the acquisition graph.
    let mut edges: BTreeMap<(String, String), Site> = BTreeMap::new();
    for f in files.iter_mut() {
        let mut fns = Vec::new();
        collect_fns(&f.items, &f.lexed, &mut fns);
        for body in fns {
            let mut held: Vec<Guard> = Vec::new();
            walk_block(
                &body,
                &f.path,
                &mut f.lexed,
                io_fns,
                decls,
                &summaries,
                &mut held,
                &mut edges,
                diags,
            );
        }
    }

    // Phase 3: cycles in the acquisition graph.
    report_cycles(&edges, files, diags);
}

/// Clone out the bodies of every non-test fn so phase 2 can hold the
/// file mutably (hatch consumption) while walking.
fn collect_fns(items: &[Item], lexed: &Lexed, out: &mut Vec<Block>) {
    for item in items {
        if item.kind == ItemKind::Fn && !is_test_item(item, lexed) {
            if let Some(b) = &item.body {
                out.push(b.clone());
            }
        }
        collect_fns(&item.children, lexed, out);
    }
}

/// Visit every fn item (recursively through mods/impls/traits).
fn for_each_fn<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item)) {
    for item in items {
        if item.kind == ItemKind::Fn {
            f(item);
        }
        for_each_fn(&item.children, f);
    }
}

/// Is the item inside test-masked code?
fn is_test_item(item: &Item, lexed: &Lexed) -> bool {
    lexed.test_mask.get(item.first).copied().unwrap_or(false)
}

/// Flat scan of a token range for acquisitions (classes) and call
/// names — no guard tracking; feeds the summaries.
fn scan_flat(tokens: &[Token], start: usize, end: usize) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut acq = BTreeSet::new();
    let mut callees = BTreeSet::new();
    for k in start..end.min(tokens.len()) {
        let t = &tokens[k];
        if t.kind != Kind::Ident || !tokens.get(k + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if is_acquisition(tokens, k) {
            if let Some(class) = receiver_class(tokens, k - 1) {
                acq.insert(class);
            }
        } else {
            callees.insert(t.text.clone());
        }
    }
    (acq, callees)
}

/// Is the ident at `k` (known to be followed by `(`) a zero-argument
/// lock acquisition method call?
fn is_acquisition(tokens: &[Token], k: usize) -> bool {
    LOCK_METHODS.contains(&tokens[k].text.as_str())
        && k > 0
        && tokens[k - 1].is_punct('.')
        && tokens.get(k + 2).is_some_and(|t| t.is_punct(')'))
}

/// The lock class of the receiver ending at the `.` at `dot`: the
/// nearest name, walking back over `?` and call parentheses.
fn receiver_class(tokens: &[Token], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    loop {
        let t = tokens.get(j)?;
        if t.is_punct('?') {
            j = j.checked_sub(1)?;
            continue;
        }
        if t.is_punct(')') {
            let mut depth = 0i32;
            while j > 0 {
                if tokens[j].is_punct(')') {
                    depth += 1;
                } else if tokens[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            // Step over the call name to its receiver `.`, then once
            // more to the field/name that classifies the lock.
            j = j.checked_sub(1)?;
            continue;
        }
        return match t.kind {
            Kind::Ident | Kind::Num => Some(t.text.clone()),
            _ => None,
        };
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_block(
    block: &Block,
    path: &str,
    lexed: &mut Lexed,
    io_fns: &HashSet<String>,
    decls: &[(String, String)],
    summaries: &BTreeMap<String, BTreeSet<String>>,
    held: &mut Vec<Guard>,
    edges: &mut BTreeMap<(String, String), Site>,
    diags: &mut Vec<Diagnostic>,
) {
    let base = held.len();
    for stmt in &block.stmts {
        scan_stmt(
            stmt, path, lexed, io_fns, decls, summaries, held, edges, diags,
        );
    }
    if held.len() > base {
        held.truncate(base);
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_stmt(
    stmt: &Stmt,
    path: &str,
    lexed: &mut Lexed,
    io_fns: &HashSet<String>,
    decls: &[(String, String)],
    summaries: &BTreeMap<String, BTreeSet<String>>,
    held: &mut Vec<Guard>,
    edges: &mut BTreeMap<(String, String), Site>,
    diags: &mut Vec<Diagnostic>,
) {
    let stmt_base = held.len();
    let mut k = stmt.first;
    let mut bi = 0;
    while k <= stmt.last {
        if bi < stmt.blocks.len() && k == stmt.blocks[bi].open {
            let b = stmt.blocks[bi].clone();
            walk_block(
                &b, path, lexed, io_fns, decls, summaries, held, edges, diags,
            );
            k = b.close + 1;
            bi += 1;
            continue;
        }
        let Some(t) = lexed.tokens.get(k) else { break };
        let followed_by_paren = lexed.tokens.get(k + 1).is_some_and(|n| n.is_punct('('));
        if t.kind == Kind::Ident && followed_by_paren {
            if is_acquisition(&lexed.tokens, k) {
                let class = receiver_class(&lexed.tokens, k - 1).unwrap_or_default();
                let (line, col) = (t.line, t.col);
                on_acquire(
                    &class, None, path, line, col, lexed, decls, held, edges, diags,
                );
                // Binding guard iff this is a `let` initializer and the
                // acquisition is the whole tail of the statement
                // (modulo `?` and the terminator).
                let binding = stmt.let_name.clone().filter(|_| {
                    (k + 3..=stmt.last).all(|j| {
                        lexed
                            .tokens
                            .get(j)
                            .is_none_or(|t| t.is_punct('?') || t.is_punct(';'))
                    })
                });
                held.push(Guard {
                    class,
                    temp: binding.is_none(),
                    binding,
                });
            } else {
                let name = t.text.clone();
                let (line, col) = (t.line, t.col);
                if name == "drop" {
                    if let Some(arg) = lexed.tokens.get(k + 2).filter(|a| a.kind == Kind::Ident) {
                        let arg = arg.text.clone();
                        held.retain(|g| g.binding.as_deref() != Some(arg.as_str()));
                    }
                } else if !held.is_empty() {
                    if io_fns.contains(&name) {
                        let classes: Vec<&str> = held.iter().map(|g| g.class.as_str()).collect();
                        if !lexed.allow("lock-io", line) {
                            diags.push(Diagnostic {
                                file: path.to_string(),
                                line,
                                col,
                                rule: "L4/lock-io".to_string(),
                                message: format!(
                                    "I/O call `{name}()` while holding lock `{}`; move the I/O \
                                     outside the guard (only the sanctioned read-through may \
                                     hatch this)",
                                    classes.join("`, `")
                                ),
                            });
                        }
                    }
                    if !LOCK_METHODS.contains(&name.as_str()) {
                        if let Some(classes) = summaries.get(&name) {
                            for class in classes.clone() {
                                on_acquire(
                                    &class,
                                    Some(&name),
                                    path,
                                    line,
                                    col,
                                    lexed,
                                    decls,
                                    held,
                                    edges,
                                    diags,
                                );
                            }
                        }
                    }
                }
            }
        }
        k += 1;
    }
    // Temporaries die at the end of their statement; bindings survive
    // to the end of the block.
    let mut idx = stmt_base;
    while idx < held.len() {
        if held[idx].temp {
            held.remove(idx);
        } else {
            idx += 1;
        }
    }
}

/// Record edges and check declared orders for one acquisition of
/// `class` (directly, or through a call to `via`).
#[allow(clippy::too_many_arguments)]
fn on_acquire(
    class: &str,
    via: Option<&str>,
    path: &str,
    line: u32,
    col: u32,
    lexed: &mut Lexed,
    decls: &[(String, String)],
    held: &[Guard],
    edges: &mut BTreeMap<(String, String), Site>,
    diags: &mut Vec<Diagnostic>,
) {
    for g in held {
        edges
            .entry((g.class.clone(), class.to_string()))
            .or_insert(Site {
                file: path.to_string(),
                line,
                col,
            });
        let violated = decls
            .iter()
            .any(|(earlier, later)| earlier == class && later == &g.class);
        if violated && !lexed.allow("lock-order", line) {
            let how = match via {
                Some(callee) => format!("call to `{callee}()` acquires lock `{class}`"),
                None => format!("lock `{class}` acquired"),
            };
            diags.push(Diagnostic {
                file: path.to_string(),
                line,
                col,
                rule: "L4/lock-order".to_string(),
                message: format!(
                    "{how} while `{}` is held; declared order is `{class} < {}`",
                    g.class, g.class
                ),
            });
        }
    }
}

/// Detect cycles in the acquisition graph and report one diagnostic
/// per strongly connected component, anchored at its smallest site.
fn report_cycles(
    edges: &BTreeMap<(String, String), Site>,
    files: &mut [ParsedFile],
    diags: &mut Vec<Diagnostic>,
) {
    let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        succ.entry(a.as_str()).or_default().insert(b.as_str());
    }
    // Transitive closure by BFS from every node (the graph is tiny).
    let mut reach: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for &n in succ.keys() {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<&str> = succ
            .get(n)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        while let Some(m) = stack.pop() {
            if seen.insert(m) {
                if let Some(next) = succ.get(m) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        reach.insert(n, seen);
    }
    // Nodes on a cycle reach themselves; group them into SCCs.
    let cyclic: Vec<&str> = reach
        .iter()
        .filter(|(n, r)| r.contains(**n))
        .map(|(n, _)| *n)
        .collect();
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    for &n in &cyclic {
        if assigned.contains(n) {
            continue;
        }
        let scc: Vec<&str> = cyclic
            .iter()
            .copied()
            .filter(|&m| m == n || (reach[n].contains(m) && reach[m].contains(n)))
            .collect();
        assigned.extend(scc.iter().copied());
        // Internal edges of the SCC, anchored at the earliest site.
        let site = edges
            .iter()
            .filter(|((a, b), _)| scc.contains(&a.as_str()) && scc.contains(&b.as_str()))
            .map(|(_, s)| s.clone())
            .min();
        let Some(site) = site else { continue };
        let cycle = {
            let mut c: Vec<&str> = scc.clone();
            c.sort_unstable();
            let mut p = c.join(" -> ");
            p.push_str(" -> ");
            p.push_str(c[0]);
            p
        };
        let allowed = files
            .iter_mut()
            .find(|f| f.path == site.file)
            .is_some_and(|f| f.lexed.allow("lock-cycle", site.line));
        if !allowed {
            diags.push(Diagnostic {
                file: site.file,
                line: site.line,
                col: site.col,
                rule: "L4/lock-cycle".to_string(),
                message: format!("lock acquisition cycle: {cycle}"),
            });
        }
    }
}
