//! L7 — guarded-by annotations: which lock protects which struct field.
//!
//! Struct fields carry `// srlint: guarded-by(<lock>)` notes (own line
//! above the field, or trailing on the field's line). The pass builds a
//! field→lock map per struct; the L4 held-set walk ([`crate::locks`])
//! then checks every field access whose receiver type it can resolve.
//!
//! `<lock>` must name something the crate actually locks: an
//! acquisition class observed anywhere in the crate (`self.meta.lock()`
//! → `meta`), a lock-typed field name, or the reserved pseudo-lock
//! `owner` — "written only during construction or through `&mut self`;
//! a reader holding `&self` can never observe a write", the idiom every
//! tree struct's `params`/`root`/`height`/`count` follow. `owner` is
//! always satisfied; it exists so L7/unprotected-shared can distinguish
//! "audited, safe by ownership" from "nobody looked".
//!
//! Rules emitted here:
//!
//! * **L7/bad-annotation** — a guarded-by note naming no known lock, or
//!   attaching to no struct field.
//! * **L7/unprotected-shared** — a field of a send-sync-noted struct
//!   that is neither guarded-by-annotated nor of a self-protecting type
//!   (`Mutex`/`RwLock`/`Condvar`, `Atomic*`, or another noted struct).
//!
//! (L7/unguarded-access is emitted from the walk in `locks.rs`.)

use std::collections::BTreeSet;

use crate::lexer::{Kind, Lexed, Token};
use crate::parser::{Item, ItemKind};
use crate::{Diagnostic, ParsedFile};

/// One named struct field.
#[derive(Clone, Debug)]
pub struct FieldInfo {
    pub name: String,
    pub line: u32,
    pub col: u32,
    /// Identifier tokens of the field type (`Arc<Mutex<Vec<u8>>>` →
    /// `["Arc", "Mutex", "Vec", "u8"]`).
    pub type_idents: Vec<String>,
    /// The type contains a raw pointer (`*const` / `*mut`).
    pub has_raw_ptr: bool,
    /// Lock named by an attached guarded-by note.
    pub guarded_by: Option<String>,
}

/// One struct with named fields (tuple and unit structs are skipped —
/// the guarded-by grammar is per named field).
#[derive(Clone, Debug)]
pub struct StructInfo {
    pub name: String,
    pub line: u32,
    pub col: u32,
    /// First and last line of the item (attrs through closing brace).
    pub start_line: u32,
    pub end_line: u32,
    pub fields: Vec<FieldInfo>,
    /// Set by `sendsync::collect_noted` when a send-sync note attaches.
    pub has_note: bool,
}

/// Field→lock maps for every annotated struct in one crate.
#[derive(Clone, Debug, Default)]
pub struct FieldMaps {
    by_struct: std::collections::BTreeMap<String, std::collections::BTreeMap<String, String>>,
}

impl FieldMaps {
    /// The lock guarding `field` of struct `ty`, if annotated.
    pub fn lock_of(&self, ty: &str, field: &str) -> Option<&str> {
        self.by_struct.get(ty)?.get(field).map(String::as_str)
    }

    /// Does `ty` have any guarded fields?
    pub fn has_struct(&self, ty: &str) -> bool {
        self.by_struct.contains_key(ty)
    }

    /// Distinct lock classes guarding fields of `ty`.
    pub fn classes_of(&self, ty: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .by_struct
            .get(ty)
            .map(|m| m.values().cloned().collect::<BTreeSet<_>>())
            .unwrap_or_default()
            .into_iter()
            .collect();
        out.sort();
        out
    }
}

/// Collect every named-field struct in the file, attaching guarded-by
/// notes to their fields. Runs once per file at parse time.
pub fn collect_structs(lexed: &mut Lexed, items: &[Item]) -> Vec<StructInfo> {
    let mut out = Vec::new();
    collect_structs_rec(lexed, items, &mut out);
    // Attach guarded-by notes: first by the note's own line (trailing
    // comment on the field), then by the covered next code line.
    for exact in [true, false] {
        for s in out.iter_mut() {
            for fld in s.fields.iter_mut() {
                if fld.guarded_by.is_some() {
                    continue;
                }
                for note in lexed.guarded_notes.iter_mut() {
                    if note.used {
                        continue;
                    }
                    let hit = if exact {
                        note.covers[0] == fld.line
                    } else {
                        note.covers.contains(&fld.line)
                    };
                    if hit {
                        note.used = true;
                        fld.guarded_by = Some(note.lock.clone());
                        break;
                    }
                }
            }
        }
    }
    out
}

fn collect_structs_rec(lexed: &Lexed, items: &[Item], out: &mut Vec<StructInfo>) {
    for item in items {
        if item.kind == ItemKind::Struct
            && !lexed.test_mask.get(item.first).copied().unwrap_or(false)
        {
            if let Some(s) = scan_struct(&lexed.tokens, item) {
                out.push(s);
            }
        }
        collect_structs_rec(lexed, &item.children, out);
    }
}

/// Token-scan one struct item for its named fields. Returns `None` for
/// tuple and unit structs.
fn scan_struct(tokens: &[Token], item: &Item) -> Option<StructInfo> {
    // Find the body delimiter after the struct name: `{` means named
    // fields; `(` or `;` means tuple/unit (skipped). Scan starts past
    // the `struct` keyword (attributes like `#[derive(...)]` carry
    // parens) and ignores generic brackets, which may nest parens in
    // bounds.
    let last = item.last.min(tokens.len() - 1);
    let mut k = item.first;
    while k <= last && !tokens[k].is_ident("struct") {
        k += 1;
    }
    let mut open = None;
    let mut angle = 0usize;
    let body_scan = tokens
        .iter()
        .enumerate()
        .take(last + 1)
        .skip((k + 2).min(last + 1));
    for (j, t) in body_scan {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = angle.saturating_sub(1);
        } else if angle == 0 {
            if t.is_punct('{') {
                open = Some(j);
                break;
            }
            if t.is_punct('(') || t.is_punct(';') {
                return None;
            }
        }
    }
    let open = open?;
    let close = item.last; // parser ends struct items at the matching `}`
    let mut fields = Vec::new();
    let mut seg = open + 1;
    while seg < close {
        // One field declaration per top-level comma.
        let mut depth = 0usize;
        let mut end = seg;
        while end < close {
            let t = &tokens[end];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') || t.is_punct('>') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct(',') && depth == 0 {
                break;
            }
            end += 1;
        }
        // Within [seg, end): skip attributes and visibility, then
        // expect `name : type...`.
        let mut p = seg;
        while p < end {
            if tokens[p].is_punct('#') && tokens.get(p + 1).is_some_and(|t| t.is_punct('[')) {
                let mut d = 0usize;
                p += 1;
                while p < end {
                    if tokens[p].is_punct('[') {
                        d += 1;
                    } else if tokens[p].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            p += 1;
                            break;
                        }
                    }
                    p += 1;
                }
            } else if tokens[p].is_ident("pub") {
                p += 1;
                if tokens.get(p).is_some_and(|t| t.is_punct('(')) {
                    let mut d = 0usize;
                    while p < end {
                        if tokens[p].is_punct('(') {
                            d += 1;
                        } else if tokens[p].is_punct(')') {
                            d -= 1;
                            if d == 0 {
                                p += 1;
                                break;
                            }
                        }
                        p += 1;
                    }
                }
            } else {
                break;
            }
        }
        if p < end
            && tokens[p].kind == Kind::Ident
            && tokens.get(p + 1).is_some_and(|t| t.is_punct(':'))
        {
            let ty = &tokens[p + 2..end];
            fields.push(FieldInfo {
                name: tokens[p].text.clone(),
                line: tokens[p].line,
                col: tokens[p].col,
                type_idents: ty
                    .iter()
                    .filter(|t| t.kind == Kind::Ident)
                    .map(|t| t.text.clone())
                    .collect(),
                has_raw_ptr: ty
                    .iter()
                    .zip(ty.iter().skip(1))
                    .any(|(a, b)| a.is_punct('*') && (b.is_ident("const") || b.is_ident("mut"))),
                guarded_by: None,
            });
        }
        seg = end + 1;
    }
    Some(StructInfo {
        name: item.name.clone(),
        line: item.line,
        col: item.col,
        start_line: tokens[item.first].line,
        end_line: tokens[item.last.min(tokens.len() - 1)].line,
        fields,
        has_note: false,
    })
}

/// Every acquisition class observed in the crate (`self.meta.lock()`
/// contributes `meta`) — the vocabulary valid guarded-by names come
/// from, alongside lock-typed field names.
pub fn acquisition_classes(files: &[ParsedFile]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for f in files {
        let toks = &f.lexed.tokens;
        for k in 0..toks.len() {
            if toks[k].kind == Kind::Ident
                && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                && crate::locks::is_acquisition(toks, k)
            {
                if let Some(c) = crate::locks::receiver_class(toks, k - 1) {
                    out.insert(c);
                }
            }
        }
    }
    out
}

/// Types that protect themselves: a field of one of these needs no
/// guarded-by note.
fn self_protecting(type_idents: &[String], noted: &BTreeSet<String>) -> bool {
    type_idents.iter().any(|t| {
        t.starts_with("Atomic")
            || t == "Mutex"
            || t == "RwLock"
            || t == "Condvar"
            || noted.contains(t)
    })
}

/// Validate guarded-by annotations crate-wide and build the field→lock
/// maps: L7/bad-annotation for unknown lock names and orphaned notes.
pub fn l7_annotations(
    files: &mut [ParsedFile],
    classes: &BTreeSet<String>,
    diags: &mut Vec<Diagnostic>,
) -> FieldMaps {
    // Lock-typed field names anywhere in the crate are also valid
    // guarded-by targets (a lock may be declared but only ever
    // acquired through a helper the class scan attributes elsewhere).
    let mut lock_fields: BTreeSet<String> = BTreeSet::new();
    for f in files.iter() {
        for s in &f.structs {
            for fld in &s.fields {
                if fld
                    .type_idents
                    .iter()
                    .any(|t| t == "Mutex" || t == "RwLock" || t == "Condvar")
                {
                    lock_fields.insert(fld.name.clone());
                }
            }
        }
    }

    let mut maps = FieldMaps::default();
    for f in files.iter_mut() {
        let path = f.path.clone();
        for s in &f.structs {
            for fld in &s.fields {
                let Some(lock) = &fld.guarded_by else {
                    continue;
                };
                let known = lock == "owner" || classes.contains(lock) || lock_fields.contains(lock);
                if !known {
                    if !f.lexed.allow("bad-annotation", fld.line) {
                        diags.push(Diagnostic {
                            file: path.clone(),
                            line: fld.line,
                            col: fld.col,
                            rule: "L7/bad-annotation".to_string(),
                            message: format!(
                                "guarded-by names unknown lock `{lock}`; expected an acquisition \
                                 class seen in this crate, a Mutex/RwLock field name, or `owner`"
                            ),
                        });
                    }
                    continue;
                }
                maps.by_struct
                    .entry(s.name.clone())
                    .or_default()
                    .insert(fld.name.clone(), lock.clone());
            }
        }
        // Notes that attached to nothing are annotation bugs too.
        let mut orphans = Vec::new();
        for note in &f.lexed.guarded_notes {
            if !note.used {
                orphans.push((note.line, note.col, note.lock.clone()));
            }
        }
        for (line, col, lock) in orphans {
            if !f.lexed.allow("bad-annotation", line) {
                diags.push(Diagnostic {
                    file: path.clone(),
                    line,
                    col,
                    rule: "L7/bad-annotation".to_string(),
                    message: format!(
                        "guarded-by({lock}) note attaches to no struct field; place it on the \
                         field's line or the line above it"
                    ),
                });
            }
        }
    }
    maps
}

/// L7/unprotected-shared: every field of a send-sync-noted struct must
/// be guarded, atomic/lock-typed, or itself a noted struct.
pub fn l7_unprotected(f: &mut ParsedFile, noted: &BTreeSet<String>, diags: &mut Vec<Diagnostic>) {
    let path = f.path.clone();
    let mut findings = Vec::new();
    for s in &f.structs {
        if !s.has_note {
            continue;
        }
        for fld in &s.fields {
            if fld.guarded_by.is_some() || self_protecting(&fld.type_idents, noted) {
                continue;
            }
            findings.push((fld.line, fld.col, s.name.clone(), fld.name.clone()));
        }
    }
    for (line, col, sname, fname) in findings {
        if !f.lexed.allow("unprotected-shared", line) {
            diags.push(Diagnostic {
                file: path.clone(),
                line,
                col,
                rule: "L7/unprotected-shared".to_string(),
                message: format!(
                    "`{sname}` crosses thread boundaries (send-sync note) but field `{fname}` is \
                     neither guarded-by-annotated nor of a self-protecting type; annotate the \
                     lock that guards it (or `owner` if only written through `&mut self`)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn structs_of(src: &str) -> Vec<StructInfo> {
        let mut lexed = lex(src);
        let items = crate::parser::parse(&lexed.tokens);
        collect_structs(&mut lexed, &items)
    }

    #[test]
    fn named_fields_are_collected_with_types() {
        let s = structs_of(
            "pub struct PageFile {\n    pub(crate) shards: Vec<Mutex<LruCache>>,\n    page_size: usize,\n}\n",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].name, "PageFile");
        assert_eq!(s[0].fields.len(), 2);
        assert_eq!(s[0].fields[0].name, "shards");
        assert!(s[0].fields[0].type_idents.contains(&"Mutex".to_string()));
        assert_eq!(s[0].fields[1].name, "page_size");
    }

    #[test]
    fn tuple_and_unit_structs_are_skipped() {
        assert!(structs_of("pub struct Wrapper(Mutex<u32>);\npub struct Marker;\n").is_empty());
    }

    #[test]
    fn guarded_note_attaches_above_and_trailing() {
        let s = structs_of(
            "struct S {\n    // srlint: guarded-by(meta)\n    a: u64,\n    b: u64, // srlint: guarded-by(wal)\n    c: u64,\n}\n",
        );
        assert_eq!(s[0].fields[0].guarded_by.as_deref(), Some("meta"));
        assert_eq!(s[0].fields[1].guarded_by.as_deref(), Some("wal"));
        assert_eq!(s[0].fields[2].guarded_by, None);
    }

    #[test]
    fn generic_field_types_do_not_split_fields() {
        let s = structs_of("struct S {\n    m: HashMap<PageId, (u64, u32)>,\n    n: u32,\n}\n");
        assert_eq!(s[0].fields.len(), 2);
        assert_eq!(s[0].fields[1].name, "n");
    }

    #[test]
    fn raw_pointer_fields_are_detected() {
        let s = structs_of("struct S {\n    p: *mut u8,\n    q: u32,\n}\n");
        assert!(s[0].fields[0].has_raw_ptr);
        assert!(!s[0].fields[1].has_raw_ptr);
    }
}
