//! L6 — scope-aware error discipline (the successor to the L3
//! signature heuristics).
//!
//! A workspace-wide registry maps every public function to the
//! concrete error type it returns (`Result<_, XError>`, or the crate's
//! `Result<T>` alias error; names registered with conflicting errors
//! become ambiguous and drop out). Three rules consume it:
//!
//! * **L6/error-conversion** — a `?` inside a public function whose
//!   error type is `E`, applied to a registry call returning `X`, must
//!   have a `From<X> for E` chain (`map_err` escapes naturally: it
//!   becomes the call the `?` applies to).
//! * **L6/swallowed-error** — `.ok()`, `.unwrap_or_default()`,
//!   `.unwrap_or(..)`, `.unwrap_or_else(..)` directly on a registry
//!   call silently discards a typed error (`PagerError`, `TreeError`,
//!   `IndexError`, `ExecError`, ...); match on it or propagate it.
//! * **L6/stale-deprecated** — `#[deprecated]` items may live in a
//!   library crate for at most one PR: the PR that deprecates an item
//!   hatches it with `allow(stale-deprecated)`, and the next PR must
//!   delete both.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::lexer::{Kind, Lexed, Token};
use crate::parser::{Item, ItemKind};
use crate::{Diagnostic, ParsedFile};

/// Methods that silently discard a `Result`'s error.
const SWALLOWERS: &[&str] = &["ok", "unwrap_or_default", "unwrap_or", "unwrap_or_else"];

/// A zero-argument `.lock()` / `.read()` / `.write()` method call is a
/// lock acquisition (L4's model), never a call into the fallible-fn
/// registry — `self.0.read()` must not alias `PageFile::read(id, kind)`.
fn is_lock_acquisition(tokens: &[Token], name_idx: usize) -> bool {
    let t = &tokens[name_idx];
    matches!(t.text.as_str(), "lock" | "read" | "write")
        && name_idx > 0
        && tokens[name_idx - 1].is_punct('.')
        && tokens.get(name_idx + 2).is_some_and(|n| n.is_punct(')'))
}

/// Workspace registry of public fallible functions and `From` chains.
#[derive(Debug, Default)]
pub struct ErrorRegistry {
    /// Function name → concrete error type (last path ident).
    fns: BTreeMap<String, String>,
    /// Names registered with conflicting error types: skipped.
    ambiguous: BTreeSet<String>,
    /// `impl From<Source> for Target` pairs, by last path ident.
    froms: BTreeSet<(String, String)>,
}

impl ErrorRegistry {
    /// The registered error type of `name`, unless ambiguous.
    fn error_of(&self, name: &str) -> Option<&str> {
        if self.ambiguous.contains(name) {
            return None;
        }
        self.fns.get(name).map(String::as_str)
    }

    fn register_fn(&mut self, name: &str, error: &str) {
        if self.ambiguous.contains(name) {
            return;
        }
        match self.fns.get(name) {
            Some(e) if e != error => {
                self.fns.remove(name);
                self.ambiguous.insert(name.to_string());
            }
            Some(_) => {}
            None => {
                self.fns.insert(name.to_string(), error.to_string());
            }
        }
    }

    /// Is there a `From` chain converting `src` into `dst`?
    fn converts(&self, src: &str, dst: &str) -> bool {
        if src == dst {
            return true;
        }
        let mut seen = HashSet::new();
        let mut stack = vec![src];
        while let Some(s) = stack.pop() {
            if !seen.insert(s) {
                continue;
            }
            for (a, b) in &self.froms {
                if a == s {
                    if b == dst {
                        return true;
                    }
                    stack.push(b);
                }
            }
        }
        false
    }
}

/// `X` is a concrete crate error type: the last path ident ends with
/// `Error` but is not the bare associated/std `Error`.
fn is_concrete_error(ident: &str) -> bool {
    ident.ends_with("Error") && ident != "Error"
}

/// The crate's `type Result<T> = ... , XError>;` alias error, if any.
pub fn crate_alias_error(files: &[ParsedFile]) -> Option<String> {
    for f in files {
        let mut found = None;
        walk_items(&f.items, false, &mut |item, _| {
            if item.kind == ItemKind::TypeAlias && item.name == "Result" && found.is_none() {
                let err = (item.first..=item.last)
                    .filter_map(|i| f.lexed.tokens.get(i))
                    .rfind(|t| t.kind == Kind::Ident && is_concrete_error(&t.text))
                    .map(|t| t.text.clone());
                found = err;
            }
        });
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Phase 1: feed one crate's public functions and `From` impls into
/// the workspace registry.
pub fn collect_registry(files: &[ParsedFile], alias_error: Option<&str>, reg: &mut ErrorRegistry) {
    for f in files {
        let lexed = &f.lexed;
        walk_items(&f.items, false, &mut |item, in_pub_trait| {
            if lexed.test_mask.get(item.first).copied().unwrap_or(false) {
                return;
            }
            if item.kind == ItemKind::Impl {
                if item.impl_trait.first().map(String::as_str) == Some("From") {
                    let src = item
                        .impl_trait
                        .iter()
                        .skip(1)
                        .next_back()
                        .cloned()
                        .unwrap_or_default();
                    let dst = item.impl_ty.last().cloned().unwrap_or_default();
                    if !src.is_empty() && !dst.is_empty() {
                        reg.froms.insert((src, dst));
                    }
                }
                return;
            }
            if item.kind != ItemKind::Fn || !(item.is_pub || in_pub_trait) {
                return;
            }
            if let Some(err) = fn_error(item, &lexed.tokens, alias_error) {
                if is_concrete_error(&err) {
                    reg.register_fn(&item.name, &err);
                }
            }
        });
    }
}

/// Walk items recursively; the callback receives whether the item sits
/// directly inside a `pub trait` (its methods are public API).
fn walk_items(items: &[Item], in_pub_trait: bool, f: &mut impl FnMut(&Item, bool)) {
    for item in items {
        f(item, in_pub_trait);
        let child_trait = item.kind == ItemKind::Trait && item.is_pub;
        walk_items(&item.children, child_trait, f);
    }
}

/// The error type named by a fn's return range: the second generic
/// argument of `Result<..>`, or the crate alias for a bare
/// `Result<T>`.
fn fn_error(item: &Item, tokens: &[Token], alias_error: Option<&str>) -> Option<String> {
    let (rs, re) = item.ret?;
    let range = &tokens[rs.min(tokens.len())..re.min(tokens.len())];
    let pos = range.iter().position(|t| t.is_ident("Result"))?;
    // Parse the generic list after `Result`.
    let mut depth = 0usize;
    let mut top_commas = 0usize;
    let mut last_ident_after_comma: Option<String> = None;
    for t in range.iter().skip(pos + 1) {
        match t.kind {
            Kind::Punct('<') => depth += 1,
            Kind::Punct('>') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            Kind::Punct(',') if depth == 1 => {
                top_commas += 1;
                last_ident_after_comma = None;
            }
            Kind::Ident if depth >= 1 && top_commas == 1 => {
                last_ident_after_comma = Some(t.text.clone());
            }
            _ => {}
        }
    }
    if top_commas == 0 {
        return alias_error.map(str::to_string);
    }
    last_ident_after_comma
}

/// Phase 2: check one file's `?` conversions, swallowed errors, and
/// stale deprecations.
pub fn l6_errors(
    path: &str,
    lexed: &mut Lexed,
    items: &[Item],
    reg: &ErrorRegistry,
    alias_error: Option<&str>,
    diags: &mut Vec<Diagnostic>,
) {
    // `?` conversion inside public fns with a concrete error type.
    let mut checks: Vec<(u32, u32, String, String, String)> = Vec::new();
    walk_items(items, false, &mut |item, _| {
        if item.kind != ItemKind::Fn
            || !item.is_pub
            || lexed.test_mask.get(item.first).copied().unwrap_or(false)
        {
            return;
        }
        let Some(body) = &item.body else { return };
        let Some(own) = fn_error(item, &lexed.tokens, alias_error) else {
            return;
        };
        if !is_concrete_error(&own) {
            return;
        }
        for k in body.open + 1..body.close.min(lexed.tokens.len()) {
            if !lexed.tokens[k].is_punct('?') {
                continue;
            }
            let Some(callee) = call_before(&lexed.tokens, k) else {
                continue;
            };
            let Some(x) = reg.error_of(&callee) else {
                continue;
            };
            if !reg.converts(x, &own) {
                let t = &lexed.tokens[k];
                checks.push((t.line, t.col, callee, x.to_string(), own.clone()));
            }
        }
    });
    for (line, col, callee, x, own) in checks {
        if !lexed.allow("error-conversion", line) {
            diags.push(Diagnostic {
                file: path.to_string(),
                line,
                col,
                rule: "L6/error-conversion".to_string(),
                message: format!(
                    "`?` on `{callee}()` propagates `{x}` but the function returns \
                     `Result<_, {own}>` and no `From<{x}> for {own}` chain exists; \
                     convert with `map_err` or add the impl"
                ),
            });
        }
    }

    // Swallowed typed errors, anywhere in non-test code.
    let mut swallows: Vec<(u32, u32, String, String, String)> = Vec::new();
    for k in 0..lexed.tokens.len() {
        let t = &lexed.tokens[k];
        if t.kind != Kind::Ident
            || !SWALLOWERS.contains(&t.text.as_str())
            || lexed.test_mask.get(k).copied().unwrap_or(false)
        {
            continue;
        }
        if k == 0
            || !lexed.tokens[k - 1].is_punct('.')
            || !lexed.tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        // `.ok()` / `.unwrap_or_default()` take no arguments; reject
        // `.ok_or(..)`-like lookalikes by requiring the empty arg list.
        if matches!(t.text.as_str(), "ok" | "unwrap_or_default")
            && !lexed.tokens.get(k + 2).is_some_and(|n| n.is_punct(')'))
        {
            continue;
        }
        let Some(callee) = call_before(&lexed.tokens, k - 1) else {
            continue;
        };
        if let Some(err) = reg.error_of(&callee) {
            swallows.push((t.line, t.col, t.text.clone(), callee, err.to_string()));
        }
    }
    for (line, col, method, callee, err) in swallows {
        if !lexed.allow("swallowed-error", line) {
            diags.push(Diagnostic {
                file: path.to_string(),
                line,
                col,
                rule: "L6/swallowed-error".to_string(),
                message: format!(
                    "`.{method}(..)` silently discards the `{err}` from `{callee}()`; \
                     match on the error or propagate it"
                ),
            });
        }
    }

    // Stale `#[deprecated]` items.
    let mut stale: Vec<(u32, u32, String)> = Vec::new();
    walk_items(items, false, &mut |item, _| {
        if lexed.test_mask.get(item.first).copied().unwrap_or(false) {
            return;
        }
        if item.has_attr_ident("deprecated") {
            stale.push((item.line, item.col, item.name.clone()));
        }
    });
    for (line, col, name) in stale {
        if !lexed.allow("stale-deprecated", line) {
            diags.push(Diagnostic {
                file: path.to_string(),
                line,
                col,
                rule: "L6/stale-deprecated".to_string(),
                message: format!(
                    "`#[deprecated]` item `{name}` has outlived its one-PR grace period; \
                     delete it (hatch with allow(stale-deprecated) only in the PR that \
                     deprecates it)"
                ),
            });
        }
    }
}

/// Name of the call whose closing `)` sits immediately before index
/// `k` (walking over nothing else): `foo(..)` → `foo`. `None` when the
/// preceding token is not a call's `)`, or the call is a lock
/// acquisition rather than a registry candidate.
fn call_before(tokens: &[Token], k: usize) -> Option<String> {
    let mut j = k.checked_sub(1)?;
    if !tokens.get(j)?.is_punct(')') {
        return None;
    }
    let mut depth = 0i32;
    loop {
        let t = tokens.get(j)?;
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j = j.checked_sub(1)?;
    }
    let name_idx = j.checked_sub(1)?;
    let name = tokens.get(name_idx)?;
    if name.kind == Kind::Ident && !is_lock_acquisition(tokens, name_idx) {
        Some(name.text.clone())
    } else {
        None
    }
}
