//! A structural recursive-descent parser over the lexer's token stream.
//!
//! This is not a Rust grammar: it recovers exactly the structure the
//! scope-aware passes need — the item tree (functions, impls, traits,
//! mods, type aliases) with attributes, visibility, and return-type
//! spans, plus a brace-matched block tree whose statements are
//! segmented at `;` / `,` boundaries. Everything else (patterns,
//! expressions, generics) stays a flat token range that the passes
//! inspect with local patterns. The parser never fails: unrecognized
//! constructs are skipped token by token, so a partially parsed file
//! still yields every item the passes can anchor to.

use crate::lexer::{Kind, Token};

/// Item classes the passes distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Impl,
    Trait,
    Mod,
    TypeAlias,
    Const,
    Static,
    Use,
    MacroDef,
}

/// One `#[...]` (or `#![...]`) attribute ahead of an item.
#[derive(Clone, Debug)]
pub struct Attr {
    /// Identifier tokens inside the brackets, in order.
    pub idents: Vec<String>,
    /// String-literal texts inside the brackets (quotes included).
    pub strs: Vec<String>,
    pub line: u32,
}

impl Attr {
    /// Does any string literal in this attribute contain `needle`?
    pub fn str_contains(&self, needle: &str) -> bool {
        self.strs.iter().any(|s| s.contains(needle))
    }
}

/// A brace-delimited block with its statements segmented.
#[derive(Clone, Debug)]
pub struct Block {
    /// Token index of the `{`.
    pub open: usize,
    /// Token index of the matching `}` (or one past the last token).
    pub close: usize,
    pub stmts: Vec<Stmt>,
}

/// One statement: a token range `[first, last]` (inclusive) with any
/// nested blocks parsed out. The range includes the nested blocks'
/// tokens; walkers that want "head" tokens skip the block ranges.
#[derive(Clone, Debug)]
pub struct Stmt {
    pub first: usize,
    pub last: usize,
    /// Bound name for `let <name> = ...` / `let mut <name> = ...`.
    pub let_name: Option<String>,
    /// Nested `{ ... }` blocks inside this statement, in source order.
    pub blocks: Vec<Block>,
}

/// One parsed item.
#[derive(Clone, Debug)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name; empty for impls.
    pub name: String,
    pub is_pub: bool,
    /// Whether an `unsafe` qualifier precedes the item keyword
    /// (`unsafe fn`, `unsafe impl`).
    pub is_unsafe: bool,
    pub attrs: Vec<Attr>,
    /// Token index of the first token (attributes included).
    pub first: usize,
    /// Token index of the last token (`}` or `;`).
    pub last: usize,
    /// Position of the name (or the introducing keyword for impls).
    pub line: u32,
    pub col: u32,
    /// Token range `[start, end)` of the return type: after `->` up to
    /// the body `{` / `;`, cut at a `where` clause.
    pub ret: Option<(usize, usize)>,
    /// Function body (fns only).
    pub body: Option<Block>,
    /// Nested items (impl/trait/mod bodies).
    pub children: Vec<Item>,
    /// `impl Trait for Ty`: identifier tokens of the trait path
    /// (generic arguments included, e.g. `["From", "PagerError"]`).
    pub impl_trait: Vec<String>,
    /// Identifier tokens of the implemented type (or the sole path for
    /// inherent impls).
    pub impl_ty: Vec<String>,
}

impl Item {
    /// First source line covered by the item (attributes included).
    pub fn start_line(&self, tokens: &[Token]) -> u32 {
        tokens.get(self.first).map_or(self.line, |t| t.line)
    }

    /// Last source line covered by the item.
    pub fn end_line(&self, tokens: &[Token]) -> u32 {
        tokens.get(self.last).map_or(self.line, |t| t.line)
    }

    /// Does any attribute carry the given marker identifier
    /// (e.g. `deprecated`)?
    pub fn has_attr_ident(&self, ident: &str) -> bool {
        self.attrs
            .iter()
            .any(|a| a.idents.iter().any(|i| i == ident))
    }

    /// Does any `#[doc = "..."]` attribute contain the marker text?
    pub fn has_doc_marker(&self, marker: &str) -> bool {
        self.attrs
            .iter()
            .any(|a| a.idents.iter().any(|i| i == "doc") && a.str_contains(marker))
    }
}

/// Keywords that introduce items (after visibility/qualifiers).
const ITEM_KWS: &[(&str, ItemKind)] = &[
    ("fn", ItemKind::Fn),
    ("struct", ItemKind::Struct),
    ("enum", ItemKind::Enum),
    ("impl", ItemKind::Impl),
    ("trait", ItemKind::Trait),
    ("mod", ItemKind::Mod),
    ("type", ItemKind::TypeAlias),
    ("const", ItemKind::Const),
    ("static", ItemKind::Static),
    ("use", ItemKind::Use),
    ("macro_rules", ItemKind::MacroDef),
];

/// Qualifier keywords that may precede the item keyword.
const QUALIFIERS: &[&str] = &["pub", "unsafe", "async", "extern", "default", "crate"];

/// Parse a whole file's token stream into an item tree.
pub fn parse(tokens: &[Token]) -> Vec<Item> {
    parse_items(tokens, 0, tokens.len())
}

/// Parse the items in `[start, end)`.
fn parse_items(tokens: &[Token], start: usize, end: usize) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = start;
    while i < end {
        // Collect leading attributes (inner `#![...]` ones included —
        // they anchor file-level context but attach to nothing).
        let item_first = i;
        let mut attrs = Vec::new();
        while i < end && tokens[i].is_punct('#') {
            let inner = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
            let open = if inner { i + 2 } else { i + 1 };
            if !tokens.get(open).is_some_and(|t| t.is_punct('[')) {
                break;
            }
            let close = match_delim(tokens, open, '[', ']', end);
            attrs.push(read_attr(tokens, open + 1, close));
            i = close + 1;
        }
        if i >= end {
            break;
        }

        // Visibility and qualifiers.
        let mut is_pub = false;
        let mut is_unsafe = false;
        let mut q = i;
        while q < end && tokens[q].kind == Kind::Ident {
            let t = tokens[q].text.as_str();
            if t == "pub" {
                is_pub = true;
                q += 1;
                // `pub(crate)` / `pub(super)` etc.
                if q < end && tokens[q].is_punct('(') {
                    q = match_delim(tokens, q, '(', ')', end) + 1;
                }
            } else if QUALIFIERS.contains(&t) {
                is_unsafe |= t == "unsafe";
                q += 1;
                // `extern "C"`.
                if t == "extern" && q < end && tokens[q].kind == Kind::Lit {
                    q += 1;
                }
            } else {
                break;
            }
        }

        // The item keyword. `const` doubles as a qualifier (`const fn`),
        // so prefer a following `fn` when present.
        let Some(kw_tok) = tokens.get(q).filter(|_| q < end) else {
            break;
        };
        let mut kind = None;
        if kw_tok.kind == Kind::Ident {
            if kw_tok.text == "const" && tokens.get(q + 1).is_some_and(|t| t.is_ident("fn")) {
                q += 1;
                kind = Some(ItemKind::Fn);
            } else {
                kind = ITEM_KWS
                    .iter()
                    .find(|(k, _)| *k == kw_tok.text)
                    .map(|&(_, k)| k);
            }
        }
        let Some(kind) = kind else {
            // Not an item start (stray token or unsupported construct):
            // skip one token and resynchronize.
            i = i.max(q) + 1;
            continue;
        };
        let kw_idx = q;
        i = q + 1;

        // Name (impls have none).
        let mut name = String::new();
        let (mut line, mut col) = (tokens[kw_idx].line, tokens[kw_idx].col);
        if kind != ItemKind::Impl {
            if let Some(t) = tokens.get(i).filter(|t| t.kind == Kind::Ident) {
                name = t.text.clone();
                line = t.line;
                col = t.col;
                i += 1;
            }
        }

        // Scan the signature to the body `{` or the terminating `;`,
        // collecting what the passes need along the way.
        let mut impl_trait = Vec::new();
        let mut impl_ty = Vec::new();
        let mut ret_start = None;
        let mut ret = None;
        let mut seen_for = false;
        let mut sig_end = end; // index of `{` or `;`
        let mut has_body = false;
        let mut angle = 0usize; // `<...>` nesting in the signature
        let mut where_seen = false;
        let mut j = i;
        while j < end {
            let t = &tokens[j];
            if t.is_punct('{') {
                sig_end = j;
                has_body = true;
                break;
            }
            if t.is_punct(';') {
                sig_end = j;
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                // Skip parameter lists / array types wholesale so `;`
                // and `{` inside them never terminate the signature.
                let (open, close) = if t.is_punct('(') {
                    ('(', ')')
                } else {
                    ('[', ']')
                };
                j = match_delim(tokens, j, open, close, end) + 1;
                continue;
            }
            if t.is_punct('-') && tokens.get(j + 1).is_some_and(|n| n.is_punct('>')) {
                // The fn's own return arrow is the one outside generic
                // brackets and before any `where` clause; arrows in
                // `Fn(..) -> X` bounds must not shadow it.
                if angle == 0 && !where_seen {
                    ret_start = Some(j + 2);
                }
                j += 2;
                continue;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = angle.saturating_sub(1);
            }
            if kind == ItemKind::Impl && t.kind == Kind::Ident && !where_seen {
                if t.text == "for" {
                    seen_for = true;
                } else if t.text != "where" {
                    if seen_for {
                        impl_ty.push(t.text.clone());
                    } else {
                        impl_trait.push(t.text.clone());
                    }
                }
            }
            if angle == 0 && t.is_ident("where") {
                where_seen = true;
                if let Some(rs) = ret_start.take() {
                    ret = Some((rs, j));
                }
            }
            j += 1;
        }
        if let Some(rs) = ret_start {
            ret = Some((rs, sig_end));
        }
        if kind == ItemKind::Impl && !seen_for {
            // Inherent impl: the collected path names the type.
            impl_ty = std::mem::take(&mut impl_trait);
        }

        // The body (or none).
        let mut body = None;
        let mut children = Vec::new();
        let last;
        if has_body {
            let close = match_delim(tokens, sig_end, '{', '}', end);
            match kind {
                ItemKind::Fn => body = Some(parse_block(tokens, sig_end, end)),
                ItemKind::Impl | ItemKind::Trait | ItemKind::Mod => {
                    children = parse_items(tokens, sig_end + 1, close.min(end));
                }
                _ => {}
            }
            last = close.min(end.saturating_sub(1));
            i = close + 1;
        } else {
            last = sig_end.min(end.saturating_sub(1));
            i = sig_end + 1;
        }

        items.push(Item {
            kind,
            name,
            is_pub,
            is_unsafe,
            attrs,
            first: item_first,
            last,
            line,
            col,
            ret,
            body,
            children,
            impl_trait,
            impl_ty,
        });
    }
    items
}

/// Read the contents of an attribute between `[` and `]`.
fn read_attr(tokens: &[Token], start: usize, end: usize) -> Attr {
    let mut idents = Vec::new();
    let mut strs = Vec::new();
    let line = tokens.get(start.saturating_sub(1)).map_or(0, |t| t.line);
    for t in tokens.iter().take(end.min(tokens.len())).skip(start) {
        match t.kind {
            Kind::Ident => idents.push(t.text.clone()),
            Kind::Lit => strs.push(t.text.clone()),
            _ => {}
        }
    }
    Attr { idents, strs, line }
}

/// Parse the block opening at `open` (a `{`), segmenting statements at
/// `;` and `,` at bracket depth zero and treating every nested brace
/// pair as a child block.
fn parse_block(tokens: &[Token], open: usize, end: usize) -> Block {
    let close = match_delim(tokens, open, '{', '}', end);
    let mut stmts = Vec::new();
    let mut j = open + 1;
    while j < close {
        let first = j;
        let mut blocks = Vec::new();
        let mut depth = 0usize; // ( and [ nesting
        let mut last = first;
        let mut k = j;
        while k < close {
            let t = &tokens[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct('{') {
                let bclose = match_delim(tokens, k, '{', '}', close);
                blocks.push(parse_block(tokens, k, close));
                // A control-flow statement ends at its block's `}`
                // unless an `else` (or method/`?` chain) continues it.
                let lead = tokens[first].text.as_str();
                let ends_stmt = depth == 0
                    && matches!(lead, "if" | "while" | "for" | "loop" | "match" | "unsafe")
                    && !tokens
                        .get(bclose + 1)
                        .is_some_and(|n| n.is_ident("else") || n.is_punct('.') || n.is_punct('?'));
                k = bclose;
                last = k;
                if ends_stmt {
                    break;
                }
                k += 1;
                continue;
            } else if depth == 0 && (t.is_punct(';') || t.is_punct(',')) {
                last = k;
                break;
            }
            last = k;
            k += 1;
        }
        let let_name = stmt_let_name(tokens, first, last);
        stmts.push(Stmt {
            first,
            last,
            let_name,
            blocks,
        });
        j = last.max(first) + 1;
    }
    Block { open, close, stmts }
}

/// Extract the bound name of a `let` statement (`let x`, `let mut x`,
/// `let Some(x)` and other non-trivial patterns yield `None`).
fn stmt_let_name(tokens: &[Token], first: usize, last: usize) -> Option<String> {
    if !tokens.get(first)?.is_ident("let") {
        return None;
    }
    let mut j = first + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = tokens.get(j).filter(|t| t.kind == Kind::Ident)?;
    // Require a plain binding: the next token must be `=` or `:` —
    // `let Some(g)` / tuple patterns are not guard-shaped.
    let next = tokens.get(j + 1)?;
    if j <= last && (next.is_punct('=') || next.is_punct(':')) {
        Some(name.text.clone())
    } else {
        None
    }
}

/// Index of the closing delimiter matching the opener at `open`,
/// clamped to `end` when unbalanced.
fn match_delim(tokens: &[Token], open: usize, oc: char, cc: char, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end.min(tokens.len()) {
        if tokens[j].is_punct(oc) {
            depth += 1;
        } else if tokens[j].is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end.min(tokens.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> (Vec<Item>, Vec<Token>) {
        let l = lex(src);
        let items = parse(&l.tokens);
        (items, l.tokens)
    }

    #[test]
    fn items_and_visibility() {
        let (items, _) = parse_src(
            "pub fn f() -> u32 { 1 }\nfn g() {}\npub(crate) struct S;\npub enum E { A }\n",
        );
        let kinds: Vec<_> = items.iter().map(|i| (i.kind, i.is_pub)).collect();
        assert_eq!(
            kinds,
            vec![
                (ItemKind::Fn, true),
                (ItemKind::Fn, false),
                (ItemKind::Struct, true),
                (ItemKind::Enum, true),
            ]
        );
        assert_eq!(items[0].name, "f");
        assert!(items[0].ret.is_some());
        assert!(items[1].ret.is_none());
    }

    #[test]
    fn impl_blocks_nest_methods() {
        let (items, _) = parse_src(
            "impl Foo {\n    pub fn a(&self) {}\n    fn b(&self) -> Result<u32, MyError> { Ok(1) }\n}\n",
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].impl_ty, vec!["Foo"]);
        assert_eq!(items[0].children.len(), 2);
        assert_eq!(items[0].children[1].name, "b");
        assert!(items[0].children[1].ret.is_some());
    }

    #[test]
    fn from_impl_paths() {
        let (items, _) = parse_src("impl From<PagerError> for TreeError { fn from(e: PagerError) -> Self { Self::Pager(e) } }\n");
        assert_eq!(items[0].impl_trait, vec!["From", "PagerError"]);
        assert_eq!(items[0].impl_ty, vec!["TreeError"]);
    }

    #[test]
    fn statements_segment_and_let_binds() {
        let (items, toks) = parse_src(
            "fn f() {\n    let g = m.lock();\n    g.push(1);\n    if x { a(); } else { b(); }\n    drop(g);\n}\n",
        );
        let body = items[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 4);
        assert_eq!(body.stmts[0].let_name.as_deref(), Some("g"));
        assert!(body.stmts[1].let_name.is_none());
        assert_eq!(body.stmts[2].blocks.len(), 2, "if and else blocks");
        assert!(toks[body.stmts[3].first].is_ident("drop"));
    }

    #[test]
    fn match_arms_segment_at_commas() {
        let (items, _) = parse_src("fn f() { match x { A => a(), B => { b(); } } }\n");
        let body = items[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 1);
        let m = &body.stmts[0].blocks[0];
        assert!(m.stmts.len() >= 2, "arms split into statements");
    }

    #[test]
    fn unsafe_qualifier_is_recorded() {
        let (items, _) =
            parse_src("unsafe impl Send for Foo {}\nimpl Bar {}\npub unsafe fn f() {}\n");
        assert!(items[0].is_unsafe);
        assert_eq!(items[0].impl_trait, vec!["Send"]);
        assert!(!items[1].is_unsafe);
        assert!(items[2].is_unsafe);
    }

    #[test]
    fn doc_marker_attr_is_visible() {
        let (items, _) = parse_src("#[doc = \"srlint: io\"]\nfn read_page() {}\n");
        assert!(items[0].has_doc_marker("srlint: io"));
        assert!(!items[0].has_doc_marker("srlint: pure"));
    }

    #[test]
    fn where_clause_cut_from_ret_range() {
        let (items, toks) =
            parse_src("pub fn f<T>() -> Result<T, AError> where T: Clone { todo()\n}\n");
        let (rs, re) = items[0].ret.unwrap();
        let names: Vec<_> = toks[rs..re]
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(names, vec!["Result", "T", "AError"]);
    }

    #[test]
    fn trait_methods_without_bodies() {
        let (items, _) = parse_src(
            "pub trait Store {\n    #[doc = \"srlint: io\"]\n    fn read_page(&self) -> Result<(), IoError>;\n    fn page_size(&self) -> usize;\n}\n",
        );
        assert_eq!(items[0].kind, ItemKind::Trait);
        assert_eq!(items[0].children.len(), 2);
        assert!(items[0].children[0].has_doc_marker("srlint: io"));
        assert!(items[0].children[0].body.is_none());
    }
}
