//! The three srlint rule passes.
//!
//! * **L1 (panic / assert)** — no `unwrap()` / `expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in non-test library
//!   code, and no release-mode `assert!` / `assert_eq!` / `assert_ne!`
//!   either. Asserts were originally exempt as "caller-contract guards,
//!   not data-dependent paths" — a coverage gap: `Point::new`'s assert
//!   was reachable from decoded page bytes, i.e. from data. Only
//!   `debug_assert*` stays legal (it vanishes in release builds);
//!   deliberate contract panics must hatch with a reason.
//! * **L2 (index / cast)** — no slice indexing `[...]` and no `as`
//!   numeric casts in the audited hot-path files (geometry distance
//!   kernels, pager page codec).
//! * **L3 (error-type / dead-variant)** — every public `fn` returning
//!   `Result` names a typed error, and every declared error-enum variant
//!   is constructed somewhere in the workspace.

use std::collections::HashSet;

use crate::lexer::{Kind, Lexed, Token};
use crate::Diagnostic;

/// Identifiers that L1 flags when invoked as `.name(`.
const L1_METHODS: &[&str] = &["unwrap", "expect"];
/// Identifiers that L1 flags when invoked as `name!`.
const L1_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Release-mode assert macros the L1 assert pass flags when invoked as
/// `name!`. `debug_assert*` is deliberately absent: it compiles away in
/// release builds and cannot panic on production data.
const L1_ASSERTS: &[&str] = &["assert", "assert_eq", "assert_ne"];
/// Numeric primitive names for the L2 `as`-cast check.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn diag(file: &str, t: &Token, rule: &str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line: t.line,
        col: t.col,
        rule: rule.to_string(),
        message,
    }
}

/// L1: panic-freedom in non-test library code.
pub fn l1_panic(lexed: &mut Lexed, file: &str, diags: &mut Vec<Diagnostic>) {
    for i in 0..lexed.tokens.len() {
        if lexed.test_mask[i] || lexed.tokens[i].kind != Kind::Ident {
            continue;
        }
        let name = lexed.tokens[i].text.clone();
        let prev_dot = i > 0 && lexed.tokens[i - 1].is_punct('.');
        let next_paren = lexed.tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        let next_bang = lexed.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        let flagged = if L1_METHODS.contains(&name.as_str()) {
            prev_dot && next_paren
        } else {
            L1_MACROS.contains(&name.as_str()) && next_bang
        };
        if !flagged {
            continue;
        }
        let line = lexed.tokens[i].line;
        if lexed.allow("panic", line) {
            continue;
        }
        let what = if L1_METHODS.contains(&name.as_str()) {
            format!("`.{name}()` can panic")
        } else {
            format!("`{name}!` aborts")
        };
        diags.push(diag(
            file,
            &lexed.tokens[i],
            "L1/panic",
            format!("{what} in non-test library code; return a typed error instead"),
        ));
    }
}

/// L1: no release-mode asserts in non-test library code.
///
/// Closes the gap that let `Point::new`'s `assert!` ship unreviewed: the
/// original L1 pass treated every assert as a caller-contract guard, but
/// an assert is a panic whenever its input can come from data (decoded
/// pages, parsed files, CLI arguments). Validate with a typed error, use
/// `debug_assert!` for true internal invariants, or hatch a deliberate
/// contract panic with `// srlint: allow(assert) -- <reason>`.
pub fn l1_assert(lexed: &mut Lexed, file: &str, diags: &mut Vec<Diagnostic>) {
    for i in 0..lexed.tokens.len() {
        if lexed.test_mask[i] || lexed.tokens[i].kind != Kind::Ident {
            continue;
        }
        let name = lexed.tokens[i].text.clone();
        if !L1_ASSERTS.contains(&name.as_str()) {
            continue;
        }
        if !lexed.tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            continue;
        }
        let line = lexed.tokens[i].line;
        if lexed.allow("assert", line) {
            continue;
        }
        diags.push(diag(
            file,
            &lexed.tokens[i],
            "L1/assert",
            format!(
                "`{name}!` panics in release builds; return a typed error, use `debug_assert!`, \
                 or hatch a deliberate contract panic"
            ),
        ));
    }
}

/// L2: no slice indexing or `as` numeric casts in audited hot-path files.
pub fn l2_hot_path(lexed: &mut Lexed, file: &str, diags: &mut Vec<Diagnostic>) {
    for i in 0..lexed.tokens.len() {
        if lexed.test_mask[i] {
            continue;
        }
        let t = &lexed.tokens[i];
        // Indexing: `[` directly after an expression tail (identifier,
        // closing bracket, or closing paren). Array types/literals follow
        // punctuation instead and stay legal.
        if t.is_punct('[') && i > 0 {
            let prev = &lexed.tokens[i - 1];
            let indexing = prev.kind == Kind::Ident
                && !matches!(prev.text.as_str(), "mut" | "ref" | "return" | "in" | "box")
                || prev.kind == Kind::Num // tuple-field access like `self.0[i]`
                || prev.is_punct(']')
                || prev.is_punct(')');
            if indexing {
                let line = t.line;
                let pos = t.clone();
                if !lexed.allow("index", line) {
                    diags.push(diag(
                        file,
                        &pos,
                        "L2/index",
                        "slice indexing in an audited hot path; use `get`/iterators or a checked split".to_string(),
                    ));
                }
                continue;
            }
        }
        if t.is_ident("as")
            && lexed
                .tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == Kind::Ident && NUMERIC_TYPES.contains(&n.text.as_str()))
        {
            let line = t.line;
            let pos = t.clone();
            let target = lexed.tokens[i + 1].text.clone();
            if !lexed.allow("cast", line) {
                diags.push(diag(
                    file,
                    &pos,
                    "L2/cast",
                    format!("`as {target}` cast in an audited hot path; use `From`/`try_from` or a widening helper"),
                ));
            }
        }
    }
}

/// An error enum declared in a library crate.
#[derive(Clone, Debug)]
pub struct ErrorEnum {
    pub name: String,
    /// Variant name with the declaration position.
    pub variants: Vec<(String, u32, u32)>,
    pub file: String,
}

/// Collect declarations of enums whose name ends in `Error`.
pub fn collect_error_enums(lexed: &Lexed, file: &str) -> Vec<ErrorEnum> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_ident("enum")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == Kind::Ident && t.text.ends_with("Error")))
        {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        // Find the enum body.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        let mut depth = 0usize;
        let mut expect_variant = false;
        let mut variants = Vec::new();
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('{') {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 {
                if t.is_punct(',') {
                    expect_variant = true;
                } else if t.is_punct('#') {
                    // Skip a variant attribute.
                    if toks.get(j + 1).is_some_and(|t| t.is_punct('[')) {
                        let mut bd = 0usize;
                        let mut k = j + 1;
                        while k < toks.len() {
                            if toks[k].is_punct('[') {
                                bd += 1;
                            } else if toks[k].is_punct(']') {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            k += 1;
                        }
                        j = k;
                    }
                } else if expect_variant && t.kind == Kind::Ident {
                    variants.push((t.text.clone(), t.line, t.col));
                    expect_variant = false;
                }
            }
            j += 1;
        }
        out.push(ErrorEnum {
            name,
            variants,
            file: file.to_string(),
        });
        i = j + 1;
    }
    out
}

/// Does the file declare a `type Result` alias?
pub fn has_result_alias(lexed: &Lexed) -> bool {
    lexed
        .tokens
        .windows(2)
        .any(|w| w[0].is_ident("type") && w[1].is_ident("Result"))
}

/// Collect `Enum::Variant` value constructions (not match patterns) into
/// `(enum, variant)` pairs. `Self::Variant` records the enum as `"Self"`,
/// which [`l3_dead_variants`] treats as a wildcard.
pub fn collect_constructions(lexed: &Lexed, out: &mut HashSet<(String, String)>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != Kind::Ident {
            continue;
        }
        // Shape: Ident :: Ident, where the second is the variant.
        if !(toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.kind == Kind::Ident))
        {
            continue;
        }
        let enum_name = &toks[i].text;
        let variant = &toks[i + 3].text;
        // Longer paths (a::b::C::V) re-match at each segment; only the
        // final pair matters, and spurious earlier pairs are harmless
        // (they record non-variant names nothing looks up).
        // Skip past a payload to see what follows the construction.
        let mut j = i + 4;
        if toks
            .get(j)
            .is_some_and(|t| t.is_punct('(') || t.is_punct('{'))
        {
            let (open, close) = if toks[j].is_punct('(') {
                ('(', ')')
            } else {
                ('{', '}')
            };
            let mut depth = 0usize;
            while j < toks.len() {
                if toks[j].is_punct(open) {
                    depth += 1;
                } else if toks[j].is_punct(close) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
        }
        // `=> ...` or `= ...` after the path means a match/let pattern,
        // not a construction.
        if toks.get(j).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        out.insert((enum_name.clone(), variant.clone()));
    }
}

/// L3b: report declared variants never constructed anywhere.
pub fn l3_dead_variants(
    enums: &[ErrorEnum],
    constructed: &HashSet<(String, String)>,
    hatch_files: &mut [crate::ParsedFile],
    diags: &mut Vec<Diagnostic>,
) {
    for e in enums {
        for (variant, line, col) in &e.variants {
            let live = constructed.contains(&(e.name.clone(), variant.clone()))
                || constructed.contains(&("Self".to_string(), variant.clone()));
            if live {
                continue;
            }
            let hatched = hatch_files
                .iter_mut()
                .find(|f| f.path == e.file)
                .is_some_and(|f| f.lexed.allow("dead-variant", *line));
            if hatched {
                continue;
            }
            diags.push(Diagnostic {
                file: e.file.clone(),
                line: *line,
                col: *col,
                rule: "L3/dead-variant".to_string(),
                message: format!(
                    "error variant `{}::{variant}` is never constructed; delete it or construct it",
                    e.name
                ),
            });
        }
    }
}

/// L3a: every public `fn` returning `Result` must name a typed error —
/// the crate's `Result` alias, a `*Error` type, an associated
/// `::Error`, or `Infallible`. `String`, `Box<dyn ...>`, and
/// `std::io::Result` are not typed errors.
pub fn l3_result_signatures(
    lexed: &mut Lexed,
    file: &str,
    crate_has_alias: bool,
    diags: &mut Vec<Diagnostic>,
) {
    let mut i = 0;
    while i < lexed.tokens.len() {
        if lexed.test_mask[i] || !lexed.tokens[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(in ...)` restriction.
        if lexed.tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            let mut depth = 0usize;
            while j < lexed.tokens.len() {
                if lexed.tokens[j].is_punct('(') {
                    depth += 1;
                } else if lexed.tokens[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
        }
        // Qualifiers before `fn`.
        while lexed.tokens.get(j).is_some_and(|t| {
            matches!(t.text.as_str(), "const" | "async" | "extern") || t.kind == Kind::Lit
        }) {
            j += 1;
        }
        if !lexed.tokens.get(j).is_some_and(|t| t.is_ident("fn")) {
            i = j.max(i + 1);
            continue;
        }
        let fn_name = lexed
            .tokens
            .get(j + 1)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        j += 2;
        // Generics.
        if lexed.tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(&lexed.tokens, j);
        }
        // Parameter list.
        if lexed.tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            let mut depth = 0usize;
            while j < lexed.tokens.len() {
                if lexed.tokens[j].is_punct('(') {
                    depth += 1;
                } else if lexed.tokens[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
        }
        // Return type, if any.
        if !(lexed.tokens.get(j).is_some_and(|t| t.is_punct('-'))
            && lexed.tokens.get(j + 1).is_some_and(|t| t.is_punct('>')))
        {
            i = j;
            continue;
        }
        let ret_start = j + 2;
        let mut end = ret_start;
        while end < lexed.tokens.len() {
            let t = &lexed.tokens[end];
            if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                break;
            }
            end += 1;
        }
        let sig_line = lexed.tokens[i].line;
        let sig_tok = lexed.tokens[i].clone();
        if let Some(problem) = untyped_result_error(&lexed.tokens[ret_start..end], crate_has_alias)
        {
            if !lexed.allow("error-type", sig_line) {
                diags.push(diag(
                    file,
                    &sig_tok,
                    "L3/error-type",
                    format!(
                        "public fn `{fn_name}` returns {problem}; name a crate-local typed error"
                    ),
                ));
            }
        }
        i = end;
    }
}

/// Skip a `<...>` generic group starting at `open`; `->` inside bounds
/// does not close the group.
fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Inspect a return-type token slice. Returns a description of the
/// violation when it is a `Result` without a typed error, else `None`.
fn untyped_result_error(ret: &[Token], crate_has_alias: bool) -> Option<String> {
    let pos = ret.iter().position(|t| t.is_ident("Result"))?;
    // `std::io::Result<T>` is typed only by the io module, not the crate.
    let io_qualified = pos >= 2 && ret[pos - 1].is_punct(':') && {
        let head = &ret[..pos - 2];
        head.last().is_some_and(|t| t.is_ident("io"))
    };
    // Split the generic arguments at the top-level comma.
    if !ret.get(pos + 1).is_some_and(|t| t.is_punct('<')) {
        return Some("a bare `Result`".to_string());
    }
    let mut depth = 1i32;
    let mut paren = 0i32;
    let mut j = pos + 2;
    let mut comma = None;
    let close;
    loop {
        let Some(t) = ret.get(j) else {
            close = j;
            break;
        };
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !ret.get(j - 1).is_some_and(|p| p.is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                close = j;
                break;
            }
        } else if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct(',') && depth == 1 && paren == 0 && comma.is_none() {
            comma = Some(j);
        }
        j += 1;
    }
    let Some(comma) = comma else {
        // One-argument `Result<T>`: fine iff it is the crate alias.
        if io_qualified {
            return Some("`std::io::Result`".to_string());
        }
        if crate_has_alias {
            return None;
        }
        return Some("`Result` with no visible error type or crate alias".to_string());
    };
    let err_toks = &ret[comma + 1..close];
    let idents: Vec<&str> = err_toks
        .iter()
        .filter(|t| t.kind == Kind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    if idents
        .iter()
        .any(|s| matches!(*s, "String" | "str" | "Box" | "dyn" | "Vec"))
    {
        return Some(format!("`Result<_, {}>`", idents.join(" ")));
    }
    match idents.last() {
        Some(last) if last.ends_with("Error") || *last == "Infallible" => None,
        Some(last) => Some(format!("`Result<_, {last}>`")),
        None => Some("`Result` with an empty error type".to_string()),
    }
}

/// Report malformed `srlint:` comments and hatches that suppressed
/// nothing (an unused hatch hides future violations, so it is itself a
/// violation).
pub fn hatch_hygiene(lexed: &Lexed, file: &str, diags: &mut Vec<Diagnostic>) {
    for &(line, col) in &lexed.malformed_hatches {
        diags.push(Diagnostic {
            file: file.to_string(),
            line,
            col,
            rule: "hatch/malformed".to_string(),
            message: "malformed srlint comment: expected `allow(<rule>)`, `ordering`, \
                      `lock-order(<a> < <b>)`, `send-sync`, `untrusted-source`, or \
                      `validated(<expr>)`, each followed by ` -- <reason>`, or \
                      `guarded-by(<lock>)` / `hot` with no reason"
                .to_string(),
        });
    }
    for h in &lexed.hatches {
        if !h.used {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: h.line,
                col: 1,
                rule: "hatch/unused".to_string(),
                message: format!(
                    "srlint hatch `allow({})` suppresses nothing; remove it",
                    h.rule
                ),
            });
        }
    }
    // The L9/L10 annotations are subject to the same hygiene: a note
    // that attaches to nothing (or validates a value the pass never
    // questioned) is stale and hides drift.
    let unused_notes = lexed
        .untrusted_notes
        .iter()
        .filter(|n| !n.used)
        .map(|n| (n.line, "untrusted-source", "marks no function item"))
        .chain(
            lexed
                .validated_notes
                .iter()
                .filter(|n| !n.used)
                .map(|n| (n.line, "validated", "validates no questioned value")),
        )
        .chain(
            lexed
                .hot_notes
                .iter()
                .filter(|n| !n.used)
                .map(|n| (n.line, "hot", "marks no function item")),
        );
    for (line, kind, why) in unused_notes {
        diags.push(Diagnostic {
            file: file.to_string(),
            line,
            col: 1,
            rule: "hatch/unused".to_string(),
            message: format!("srlint note `{kind}` {why}; remove it"),
        });
    }
}
