//! `sr-lint` — run the srlint workspace checks from the command line.
//!
//! ```text
//! sr-lint [--json] [--root <workspace-root>] [--rule <id>] [--stats] [--timings]
//! ```
//!
//! `--rule` keeps only one family (`L7`) or one exact rule
//! (`L7/unguarded-access`); `--stats` appends a one-line run summary
//! (files scanned, findings per firing rule, elapsed ms); `--timings`
//! appends a per-pass wall-clock summary line. Exit code 0 when the
//! (filtered) report is clean, 1 on violations, 2 on usage or I/O
//! errors. `srtool lint` is the same entry point routed through the
//! CLI.

#![forbid(unsafe_code)]

use std::path::PathBuf;

fn main() {
    let mut json = false;
    let mut stats = false;
    let mut timings = false;
    let mut rule: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--stats" => stats = true,
            "--timings" => timings = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("sr-lint: --root needs a value");
                    std::process::exit(2);
                }
            },
            "--rule" => match args.next() {
                Some(v) => rule = Some(v),
                None => {
                    eprintln!("sr-lint: --rule needs a value (e.g. L7 or L7/unguarded-access)");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "sr-lint: unknown argument {other:?}\n\
                     usage: sr-lint [--json] [--root <dir>] [--rule <id>] [--stats] [--timings]"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(r) = &rule {
        let family = r.split('/').next().unwrap_or("");
        if !sr_lint::RULE_FAMILIES.contains(&family) {
            eprintln!(
                "sr-lint: --rule {r:?} names no rule family (expected one of {})",
                sr_lint::RULE_FAMILIES.join(", ")
            );
            std::process::exit(2);
        }
    }
    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        sr_lint::find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("sr-lint: no workspace root found (pass --root)");
        std::process::exit(2);
    };
    let started = std::time::Instant::now();
    let mut report = match sr_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sr-lint: {e}");
            std::process::exit(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis();
    if let Some(r) = &rule {
        report.retain_rule(r);
    }
    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "srlint: {} violation(s), {} escape hatch(es) in use",
            report.diagnostics.len(),
            report.hatches_used
        );
    }
    if stats {
        let per_rule: Vec<String> = report
            .family_counts()
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(fam, n)| format!("{fam}={n}"))
            .collect();
        let findings = if per_rule.is_empty() {
            "none".to_string()
        } else {
            per_rule.join(" ")
        };
        println!(
            "srlint-stats: files={} findings: {} elapsed_ms={}",
            report.files_scanned, findings, elapsed_ms
        );
    }
    if timings {
        let per_pass: Vec<String> = report
            .timings
            .iter()
            .map(|(name, d)| format!("{name}={:.1}ms", d.as_secs_f64() * 1000.0))
            .collect();
        println!("srlint-timings: {}", per_pass.join(" "));
    }
    if !report.is_clean() {
        std::process::exit(1);
    }
}
