//! `sr-lint` — run the srlint workspace checks from the command line.
//!
//! ```text
//! sr-lint [--json] [--root <workspace-root>]
//! ```
//!
//! Exit code 0 when the workspace is clean, 1 on violations, 2 on usage
//! or I/O errors. `srtool lint` is the same entry point routed through
//! the CLI.

#![forbid(unsafe_code)]

use std::path::PathBuf;

fn main() {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("sr-lint: --root needs a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "sr-lint: unknown argument {other:?}\nusage: sr-lint [--json] [--root <dir>]"
                );
                std::process::exit(2);
            }
        }
    }
    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        sr_lint::find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("sr-lint: no workspace root found (pass --root)");
        std::process::exit(2);
    };
    let report = match sr_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sr-lint: {e}");
            std::process::exit(2);
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "srlint: {} violation(s), {} escape hatch(es) in use",
            report.diagnostics.len(),
            report.hatches_used
        );
    }
    if !report.is_clean() {
        std::process::exit(1);
    }
}
