//! L9 — untrusted-input taint analysis over the workspace call graph.
//!
//! Values produced by designated untrusted sources — the `sr-wire`
//! reader's scalar decodes, the `sr-pager` leaf/WAL header reads, and
//! any function marked `// srlint: untrusted-source -- reason` — are
//! *tainted*. A tainted value must not reach a sink that panics,
//! over-reads, or allocates unboundedly on a bad input:
//!
//! * **L9/unchecked-offset** — tainted value inside a raw index or
//!   slice bracket (`buf[n]`, `&buf[n..]`): these panic out of range.
//! * **L9/unchecked-length** — tainted loop bound (`for _ in 0..n`) or
//!   argument to a panicking length operation (`split_at`, `chunks`,
//!   `chunks_exact`, `windows`, `copy_within`).
//! * **L9/tainted-alloc** — tainted allocation size
//!   (`with_capacity`, `reserve`, `reserve_exact`, `resize`,
//!   `vec![_; n]`).
//!
//! Taint is cleared by a *dominating validation* earlier in the same
//! function (approximated by token order): a comparison
//! (`<`, `<=`, `>`, `>=`, `==`, `!=`) involving the value, a
//! `checked_*` / `try_into` / `try_from` call in a statement that
//! mentions it, or a `// srlint: validated(<expr>) -- reason` hatch
//! naming it. Total accessors (`get`, `take`) are not sinks — they are
//! the sanctioned pattern.
//!
//! Interprocedural flow rides the call graph: a function whose return
//! expression mentions a tainted value *returns taint* to its callers,
//! and a tainted argument taints the matching callee parameter, to a
//! fixpoint. Known false-negative classes (by design, documented in
//! DESIGN.md §8): taint does not survive struct-field stores or
//! projections (`x.field`), tuple/struct destructuring, or `.len()` /
//! `.is_empty()` projections, and comparison sanitizers are detected
//! syntactically (a generic-argument `<` can mask one).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{match_paren, CallGraph, Edge};
use crate::lexer::{Kind, Token, ValidatedNote};
use crate::parser::{Block, Stmt};
use crate::{Diagnostic, ParsedFile};

/// Decoder entry points that are taint sources even without an
/// annotation, keyed by (crate, fn name): the wire reader's scalar
/// decodes and the pager's leaf/WAL header reads.
const BUILTIN_SOURCES: &[(&str, &str)] = &[
    ("wire", "u8"),
    ("wire", "u16"),
    ("wire", "u32"),
    ("wire", "u64"),
    ("wire", "f32"),
    ("wire", "f64"),
    ("pager", "get_u16"),
    ("pager", "rd_u32"),
    ("pager", "rd_u64"),
];

/// Panicking length operations: a tainted argument is a sink.
const LENGTH_SINKS: &[&str] = &[
    "split_at",
    "split_at_mut",
    "chunks",
    "chunks_exact",
    "windows",
    "copy_within",
];

/// Allocation-size operations: a tainted argument is a sink.
const ALLOC_SINKS: &[&str] = &["with_capacity", "reserve", "reserve_exact", "resize"];

/// Statement-level sanitizer calls: a statement mentioning a tainted
/// value through one of these validates it.
fn is_sanitizer_ident(text: &str) -> bool {
    text.starts_with("checked_") || text == "try_into" || text == "try_from"
}

/// One candidate finding, pre-hatch.
struct Finding {
    file: usize,
    line: u32,
    col: u32,
    /// Rule tail: `unchecked-length` / `unchecked-offset` /
    /// `tainted-alloc`.
    tail: &'static str,
    message: String,
}

/// Run the L9 pass over the whole workspace.
pub fn l9_taint(graph: &CallGraph, files: &mut [ParsedFile], diags: &mut Vec<Diagnostic>) {
    let n = graph.defs.len();

    // Sources: built-ins by (crate, name), plus `untrusted-source`
    // notes attached to a fn item starting on a covered line.
    let mut is_source = vec![false; n];
    let mut untrusted_used: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (id, src) in is_source.iter_mut().enumerate() {
        let def = &graph.defs[id];
        let fm = graph.meta(files, id);
        if BUILTIN_SOURCES.contains(&(def.krate.as_str(), def.name.as_str())) {
            *src = true;
        }
        for (ni, note) in files[def.file].lexed.untrusted_notes.iter().enumerate() {
            if note.covers.contains(&fm.start_line) {
                *src = true;
                untrusted_used.insert((def.file, ni));
            }
        }
    }

    // Interprocedural fixpoint: which fns return taint, and which
    // params receive tainted arguments. Both sets only grow, so the
    // loop terminates.
    let mut returns_taint = is_source.clone();
    let mut tainted_params: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut validated_used: BTreeSet<(usize, usize)> = BTreeSet::new();
    loop {
        let mut changed = false;
        for id in 0..n {
            let (ret, args) = intra(
                graph,
                files,
                id,
                &returns_taint,
                &tainted_params[id].clone(),
                &mut validated_used,
                None,
            );
            if ret && !returns_taint[id] {
                returns_taint[id] = true;
                changed = true;
            }
            for (callee, pname) in args {
                changed |= tainted_params[callee].insert(pname);
            }
        }
        if !changed {
            break;
        }
    }

    // Reporting pass with the settled summaries.
    let mut findings: Vec<Finding> = Vec::new();
    for (id, params) in tainted_params.iter().enumerate() {
        intra(
            graph,
            files,
            id,
            &returns_taint,
            &params.clone(),
            &mut validated_used,
            Some(&mut findings),
        );
    }

    for (fi, ni) in untrusted_used {
        files[fi].lexed.untrusted_notes[ni].used = true;
    }
    for (fi, ni) in validated_used {
        files[fi].lexed.validated_notes[ni].used = true;
    }

    findings.sort_by(|a, b| (a.file, a.line, a.col, a.tail).cmp(&(b.file, b.line, b.col, b.tail)));
    findings.dedup_by(|a, b| (a.file, a.line, a.col, a.tail) == (b.file, b.line, b.col, b.tail));
    for f in findings {
        let lexed = &mut files[f.file].lexed;
        // A `validated(<expr>)` note on the sink line suppresses too.
        let mut suppressed = false;
        for note in lexed.validated_notes.iter_mut() {
            if note.covers.contains(&f.line) {
                note.used = true;
                suppressed = true;
            }
        }
        if !suppressed && !lexed.allow(f.tail, f.line) {
            let path = files[f.file].path.clone();
            diags.push(Diagnostic {
                file: path,
                line: f.line,
                col: f.col,
                rule: format!("L9/{}", f.tail),
                message: f.message,
            });
        }
    }
}

/// Per-statement walk state.
struct Walk<'a> {
    graph: &'a CallGraph,
    tokens: &'a [Token],
    /// Caller's outgoing edges, in token order.
    edges: &'a [Edge],
    returns_taint: &'a [bool],
    /// Settled param metadata of every def, for arg→param mapping.
    file: usize,
    fn_name: &'a str,
    validated: &'a [ValidatedNote],
    /// Var name → human-readable origin.
    tainted: BTreeMap<String, String>,
    /// Var name → tainted vars that fed its value (`let need = n * eb`
    /// records `need → {n}`), so validating the derivative also
    /// validates its feeders — `if remaining < need` dominates `n`.
    derived: BTreeMap<String, BTreeSet<String>>,
    arg_taints: Vec<(usize, String)>,
    ret_taint: bool,
}

#[allow(clippy::too_many_arguments)]
fn intra(
    graph: &CallGraph,
    files: &[ParsedFile],
    id: usize,
    returns_taint: &[bool],
    tainted_params: &BTreeSet<String>,
    validated_used: &mut BTreeSet<(usize, usize)>,
    mut findings: Option<&mut Vec<Finding>>,
) -> (bool, Vec<(usize, String)>) {
    let def = &graph.defs[id];
    let fm = graph.meta(files, id);
    let file = &files[def.file];
    let mut w = Walk {
        graph,
        tokens: &file.lexed.tokens,
        edges: &graph.calls[id],
        returns_taint,
        file: def.file,
        fn_name: &def.name,
        validated: &file.lexed.validated_notes,
        tainted: BTreeMap::new(),
        derived: BTreeMap::new(),
        arg_taints: Vec::new(),
        ret_taint: false,
    };
    for p in tainted_params {
        w.tainted
            .insert(p.clone(), format!("tainted argument to `{}()`", def.name));
    }
    walk_block(&fm.body, &mut w, files, validated_used, &mut findings, true);
    (w.ret_taint, std::mem::take(&mut w.arg_taints))
}

fn walk_block(
    block: &Block,
    w: &mut Walk<'_>,
    files: &[ParsedFile],
    validated_used: &mut BTreeSet<(usize, usize)>,
    findings: &mut Option<&mut Vec<Finding>>,
    fn_tail: bool,
) {
    let n = block.stmts.len();
    for (si, stmt) in block.stmts.iter().enumerate() {
        let is_tail =
            fn_tail && si + 1 == n && !w.tokens.get(stmt.last).is_some_and(|t| t.is_punct(';'));
        walk_stmt(stmt, w, files, validated_used, findings, is_tail);
    }
}

fn walk_stmt(
    stmt: &Stmt,
    w: &mut Walk<'_>,
    files: &[ParsedFile],
    validated_used: &mut BTreeSet<(usize, usize)>,
    findings: &mut Option<&mut Vec<Finding>>,
    is_tail: bool,
) {
    // Head token indices: the statement's tokens outside nested blocks.
    let mut head: Vec<usize> = Vec::new();
    {
        let mut k = stmt.first;
        let mut bi = 0;
        while k <= stmt.last {
            if bi < stmt.blocks.len() && k == stmt.blocks[bi].open {
                k = stmt.blocks[bi].close + 1;
                bi += 1;
                continue;
            }
            head.push(k);
            k += 1;
        }
    }

    // 1. `validated(<expr>)` notes covering this statement clear the
    //    named variable.
    let first_line = w.tokens.get(stmt.first).map_or(0, |t| t.line);
    let last_line = w.tokens.get(stmt.last).map_or(first_line, |t| t.line);
    for (ni, note) in w.validated.iter().enumerate() {
        let covered = note
            .covers
            .iter()
            .any(|&l| l >= first_line && l <= last_line);
        if covered && w.tainted.contains_key(&note.expr) {
            clear_taint(w, vec![note.expr.clone()]);
            validated_used.insert((w.file, ni));
        }
    }

    // 2. Statement-level sanitizers: a comparison or checked_* /
    //    try_into mention validates every tainted var in the head.
    if has_sanitizer(w.tokens, &head) {
        let mentioned: Vec<String> = w
            .tainted
            .keys()
            .filter(|v| head.iter().any(|&k| w.tokens[k].is_ident(v)))
            .cloned()
            .collect();
        clear_taint(w, mentioned);
    }

    // 3. Sinks (reporting pass only).
    if findings.is_some() {
        scan_sinks(stmt, &head, w, findings);
    }

    // 4. Interprocedural argument taint at call sites in the head.
    for &k in &head {
        let site = edges_at(w.edges, k);
        if site.is_empty() {
            continue;
        }
        let open = k + 1;
        let close = match_paren(w.tokens, open, w.tokens.len());
        let args = split_args(w.tokens, open, close);
        for e in site {
            let callee_meta = w.graph.meta(files, e.callee);
            for (ai, (astart, aend)) in args.iter().enumerate() {
                let Some((pname, _)) = callee_meta.params.get(ai) else {
                    continue;
                };
                if range_tainted(w, *astart, *aend).is_some() {
                    w.arg_taints.push((e.callee, pname.clone()));
                }
            }
        }
    }

    // 5. Assignment: `let v = <tainted rhs>` taints v; a plain
    //    `v = <tainted rhs>` re-taints an existing name.
    let rhs_origin = {
        let eq = head.iter().position(|&k| {
            w.tokens[k].is_punct('=')
                && !w.tokens.get(k + 1).is_some_and(|t| t.is_punct('='))
                && !w.tokens.get(k.wrapping_sub(1)).is_some_and(|t| {
                    t.is_punct('=')
                        || t.is_punct('<')
                        || t.is_punct('>')
                        || t.is_punct('!')
                        || t.is_punct('+')
                        || t.is_punct('-')
                        || t.is_punct('*')
                        || t.is_punct('/')
                })
        });
        eq.and_then(|pos| {
            let rhs = &head[pos + 1..];
            rhs_taint(w, rhs).map(|origin| (origin, feeders_in(w, rhs)))
        })
    };
    if let Some((origin, feeders)) = rhs_origin {
        let assigned = if let Some(name) = &stmt.let_name {
            Some(name.clone())
        } else {
            // `v = expr;`: the head starts with the assigned name.
            head.first()
                .map(|&k0| &w.tokens[k0])
                .filter(|t| t.kind == Kind::Ident && !t.is_ident("let"))
                .map(|t| t.text.clone())
        };
        if let Some(name) = assigned {
            w.tainted.insert(name.clone(), origin);
            let mut src = feeders;
            src.remove(&name);
            if !src.is_empty() {
                w.derived.insert(name, src);
            }
        }
    }

    // 6. Return taint: `return <expr>` or the fn tail expression.
    let is_return = w
        .tokens
        .get(stmt.first)
        .is_some_and(|t| t.is_ident("return"));
    if (is_return || is_tail) && !w.ret_taint {
        let expr: Vec<usize> = if is_return {
            head.iter().copied().skip(1).collect()
        } else {
            head.clone()
        };
        if rhs_taint(w, &expr).is_some() {
            w.ret_taint = true;
        }
    }

    // 7. Recurse into nested blocks with the updated state.
    for b in &stmt.blocks {
        walk_block(b, w, files, validated_used, findings, false);
    }
}

/// Does the head contain a comparison operator or sanitizer call?
/// `<`/`>` count only after a value-like token (number, `)`, `]`, or a
/// non-CamelCase identifier), so generic arguments rarely mask; shifts
/// (`<<`, `>>`) and arrows never count.
fn has_sanitizer(tokens: &[Token], head: &[usize]) -> bool {
    for (hi, &k) in head.iter().enumerate() {
        let t = &tokens[k];
        if t.kind == Kind::Ident && is_sanitizer_ident(&t.text) {
            return true;
        }
        let next_same = |c: char| {
            head.get(hi + 1)
                .is_some_and(|&k2| k2 == k + 1 && tokens[k2].is_punct(c))
        };
        let prev_same = |c: char| {
            hi.checked_sub(1)
                .and_then(|p| head.get(p))
                .is_some_and(|&k2| k2 + 1 == k && tokens[k2].is_punct(c))
        };
        if t.is_punct('=') && next_same('=') {
            return true;
        }
        if t.is_punct('!') && next_same('=') {
            return true;
        }
        if (t.is_punct('<') || t.is_punct('>')) && !next_same(t_char(t)) && !prev_same(t_char(t)) {
            let prev_val = hi
                .checked_sub(1)
                .and_then(|p| head.get(p))
                .map(|&k2| &tokens[k2])
                .is_some_and(value_like);
            if prev_val {
                return true;
            }
        }
    }
    false
}

fn t_char(t: &Token) -> char {
    match t.kind {
        Kind::Punct(c) => c,
        _ => ' ',
    }
}

/// Value-like comparison operand: a number, close bracket, or an
/// identifier that is not CamelCase (type names are CamelCase; locals
/// and SCREAMING consts are not).
fn value_like(t: &Token) -> bool {
    match t.kind {
        Kind::Num => true,
        Kind::Punct(')') | Kind::Punct(']') => true,
        Kind::Ident => {
            let mut chars = t.text.chars();
            let first_upper = chars.next().is_some_and(|c| c.is_ascii_uppercase());
            let has_lower = t.text.chars().any(|c| c.is_ascii_lowercase());
            !(first_upper && has_lower)
        }
        _ => false,
    }
}

/// First tainted mention inside `head[range]`, with its origin. A
/// mention is a tainted identifier used as a value: not a field or
/// method *name* (preceded by `.`), not a field projection
/// (`v.field`), and not a `.len()` / `.is_empty()` projection.
fn range_tainted(w: &Walk<'_>, start: usize, end: usize) -> Option<(usize, String, String)> {
    for k in start..end {
        let t = w.tokens.get(k)?;
        if t.kind != Kind::Ident {
            continue;
        }
        if k > 0 && (w.tokens[k - 1].is_punct('.') || w.tokens[k - 1].is_punct(':')) {
            continue;
        }
        let Some(origin) = w.tainted.get(&t.text) else {
            // A call that returns taint also taints the range.
            if w.tokens.get(k + 1).is_some_and(|n| n.is_punct('(')) {
                for e in edges_at(w.edges, k) {
                    if w.returns_taint[e.callee] {
                        return Some((
                            k,
                            t.text.clone(),
                            format!("return value of `{}()`", w.graph.defs[e.callee].name),
                        ));
                    }
                }
            }
            continue;
        };
        // Projections drop taint: `v.field`, `v.len()`, `v.is_empty()`.
        if w.tokens.get(k + 1).is_some_and(|n| n.is_punct('.')) {
            if let Some(m) = w.tokens.get(k + 2).filter(|m| m.kind == Kind::Ident) {
                let is_call = w.tokens.get(k + 3).is_some_and(|p| p.is_punct('('));
                if !is_call || m.text == "len" || m.text == "is_empty" {
                    continue;
                }
            }
        }
        return Some((k, t.text.clone(), origin.clone()));
    }
    None
}

/// Remove taint from `seeds` and, transitively, from every var that fed
/// their values: `if remaining < need` validates `need` *and* the `n`
/// that `need = n * entry_bytes` was derived from — the comparison
/// bounds the whole derivation chain.
fn clear_taint(w: &mut Walk<'_>, seeds: Vec<String>) {
    let mut work = seeds;
    while let Some(v) = work.pop() {
        if w.tainted.remove(&v).is_some() {
            if let Some(src) = w.derived.get(&v) {
                work.extend(src.iter().cloned());
            }
        }
    }
}

/// Tainted vars used as values in the head-token range, each expanded
/// with its own recorded feeders (for derivation tracking).
fn feeders_in(w: &Walk<'_>, expr: &[usize]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for &k in expr {
        let t = &w.tokens[k];
        if t.kind != Kind::Ident
            || k > 0 && (w.tokens[k - 1].is_punct('.') || w.tokens[k - 1].is_punct(':'))
        {
            continue;
        }
        if w.tainted.contains_key(&t.text) {
            out.insert(t.text.clone());
            if let Some(src) = w.derived.get(&t.text) {
                out.extend(src.iter().cloned());
            }
        }
    }
    out
}

/// Taint of an expression given as head-token indices: a tainted
/// mention anywhere, or a call to a taint-returning fn.
fn rhs_taint(w: &Walk<'_>, expr: &[usize]) -> Option<String> {
    for (i, &k) in expr.iter().enumerate() {
        let t = &w.tokens[k];
        if t.kind != Kind::Ident {
            continue;
        }
        if let Some((_, var, origin)) = range_tainted(w, k, k + 1) {
            return Some(format!("`{var}` ({origin})"));
        }
        // Calls that return taint.
        if expr.get(i + 1).is_some_and(|&k2| k2 == k + 1) && w.tokens[k + 1].is_punct('(') {
            for e in edges_at(w.edges, k) {
                if w.returns_taint[e.callee] {
                    return Some(format!(
                        "return value of `{}()`",
                        w.graph.defs[e.callee].name
                    ));
                }
            }
        }
    }
    None
}

/// The run of edges anchored at call-site token `k` (edges are sorted
/// by token; name-match fan-out shares one site).
fn edges_at(edges: &[Edge], k: usize) -> &[Edge] {
    let start = edges.partition_point(|e| e.token < k);
    let end = edges.partition_point(|e| e.token <= k);
    &edges[start..end]
}

/// Split the depth-0 comma-separated argument ranges of the call parens
/// at `open`..`close` (token-index ranges, exclusive end).
fn split_args(tokens: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut seg = open + 1;
    let mut depth = 0usize;
    let end = close.min(tokens.len());
    for (k, t) in tokens.iter().enumerate().take(end).skip(open + 1) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(',') && depth == 0 {
            if k > seg {
                out.push((seg, k));
            }
            seg = k + 1;
        }
    }
    if close > seg {
        out.push((seg, close));
    }
    out
}

/// Scan a statement head for the three sink shapes and report tainted
/// flows into them.
fn scan_sinks(
    stmt: &Stmt,
    head: &[usize],
    w: &mut Walk<'_>,
    findings: &mut Option<&mut Vec<Finding>>,
) {
    let Some(out) = findings.as_deref_mut() else {
        return;
    };
    let tokens = w.tokens;
    for (hi, &k) in head.iter().enumerate() {
        let t = &tokens[k];
        // Allocation and length sinks: `name(<args>)` with a tainted
        // argument.
        if t.kind == Kind::Ident && tokens.get(k + 1).is_some_and(|n| n.is_punct('(')) {
            let tail: Option<(&'static str, &'static str)> =
                if ALLOC_SINKS.contains(&t.text.as_str()) {
                    Some(("tainted-alloc", "allocation size"))
                } else if LENGTH_SINKS.contains(&t.text.as_str()) {
                    Some(("unchecked-length", "slice length"))
                } else {
                    None
                };
            if let Some((tail, what)) = tail {
                let close = match_paren(tokens, k + 1, tokens.len());
                if let Some((mk, var, origin)) = range_tainted(w, k + 2, close) {
                    push_finding(out, w, mk, tail, &var, &origin, what, &t.text);
                }
            }
        }
        // `vec![expr; n]` with a tainted repeat count.
        if t.is_ident("vec")
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('!'))
            && tokens.get(k + 2).is_some_and(|n| n.is_punct('['))
        {
            let close = match_bracket_sq(tokens, k + 2);
            if let Some(semi) = (k + 3..close).find(|&j| tokens[j].is_punct(';')) {
                if let Some((mk, var, origin)) = range_tainted(w, semi + 1, close) {
                    push_finding(
                        out,
                        w,
                        mk,
                        "tainted-alloc",
                        &var,
                        &origin,
                        "allocation size",
                        "vec!",
                    );
                }
            }
        }
        // Raw index / slice brackets: `recv[...]` (an ident, `)`, or
        // `]` immediately before the `[` makes it an index, not an
        // array literal).
        if t.is_punct('[') && hi > 0 {
            let prev = &tokens[head[hi - 1]];
            let indexing = matches!(prev.kind, Kind::Ident | Kind::Num)
                || prev.is_punct(')')
                || prev.is_punct(']');
            if indexing && !prev.is_ident("vec") {
                let close = match_bracket_sq(tokens, k);
                if let Some((mk, var, origin)) = range_tainted(w, k + 1, close) {
                    push_finding(
                        out,
                        w,
                        mk,
                        "unchecked-offset",
                        &var,
                        &origin,
                        "index/slice bound",
                        &prev.text,
                    );
                }
            }
        }
    }
    // Loop bound: `for <pat> in <range with ..> { ... }`.
    let starts_for = tokens.get(stmt.first).is_some_and(|t| t.is_ident("for"));
    if starts_for {
        if let Some(in_pos) = head.iter().position(|&k| tokens[k].is_ident("in")) {
            let rest = &head[in_pos + 1..];
            let has_range = rest
                .windows(2)
                .any(|p| tokens[p[0]].is_punct('.') && tokens[p[1]].is_punct('.'));
            if has_range {
                for &k in rest {
                    // The bound of `0..n` sits right after the range
                    // dots, which `range_tainted` would skip as a
                    // field/method name — look it up directly there.
                    let t = &tokens[k];
                    let after_range =
                        k >= 2 && tokens[k - 1].is_punct('.') && tokens[k - 2].is_punct('.');
                    let hit = if after_range && t.kind == Kind::Ident {
                        w.tainted
                            .get(&t.text)
                            .map(|origin| (k, t.text.clone(), origin.clone()))
                    } else {
                        range_tainted(w, k, k + 1)
                    };
                    if let Some((mk, var, origin)) = hit {
                        push_finding(
                            out,
                            w,
                            mk,
                            "unchecked-length",
                            &var,
                            &origin,
                            "loop bound",
                            "for",
                        );
                        break;
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn push_finding(
    out: &mut Vec<Finding>,
    w: &Walk<'_>,
    mention_tok: usize,
    tail: &'static str,
    var: &str,
    origin: &str,
    what: &str,
    sink_name: &str,
) {
    let t = &w.tokens[mention_tok];
    out.push(Finding {
        file: w.file,
        line: t.line,
        col: t.col,
        tail,
        message: format!(
            "untrusted value `{var}` ({origin}) used as {what} in `{sink_name}` inside \
             `{}()` without a dominating validation; check it against the buffer length \
             (`checked_*`, a `<=` comparison, `try_into`) or mark it \
             `// srlint: validated({var}) -- <reason>`",
            w.fn_name
        ),
    });
}

/// Index of the `]` matching the `[` at `open`.
fn match_bracket_sq(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len()
}
