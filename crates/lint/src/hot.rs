//! L10 — hot-path purity over the workspace call graph.
//!
//! Functions annotated `// srlint: hot` (the PR-8 distance kernels, the
//! shared columnar leaf scan, each tree's leaf fast path) are *hot
//! regions*: the 5.6–6.8× qps win in BENCH_PR8.json lives or dies on
//! them staying allocation-free and lock-free. The pass checks the
//! property *transitively*: a hot root must not reach, through any call
//! chain the graph resolves, a function that
//!
//! * **allocates** (`Vec::new`, `Box::new`, `.to_vec()`, `.collect()`,
//!   `.clone()`, `format!`, `vec!`) — `L10/hot-alloc`;
//! * **acquires a lock** (a zero-argument `.lock()` / `.read()` /
//!   `.write()` call, the same shape L4 models) — `L10/hot-lock`;
//! * **performs store I/O** (a call to a name in the L4 I/O registry,
//!   or a function carrying `#[doc = "srlint: io"]`) — `L10/hot-io`.
//!
//! Diagnostics carry the full call chain and anchor at the first call
//! site inside the hot root (or the offending operation itself when it
//! is direct), so an `allow(hot-*)` hatch sits where the decision is
//! made. Amortized growth (`push`, `resize`, `reserve` on
//! caller-provided scratch) is deliberately outside the ban list: the
//! hot contract is "no fresh heap blocks, no blocking", not "no writes
//! into reusable buffers".

use std::collections::{BTreeSet, HashSet};

use crate::callgraph::CallGraph;
use crate::lexer::Kind;
use crate::locks::{is_acquisition, receiver_class};
use crate::{Diagnostic, ParsedFile};

/// Method names whose call allocates a fresh heap block.
const ALLOC_METHODS: &[&str] = &["to_vec", "collect", "clone"];

/// Macro names that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// A direct property site inside one function.
#[derive(Clone)]
struct Site {
    line: u32,
    col: u32,
    desc: String,
}

struct Family {
    tail: &'static str,
    what: &'static str,
    direct: Vec<Option<Site>>,
}

/// Run the L10 pass over the whole workspace.
pub fn l10_hot(
    graph: &CallGraph,
    io_fns: &HashSet<String>,
    files: &mut [ParsedFile],
    diags: &mut Vec<Diagnostic>,
) {
    let n = graph.defs.len();

    // Hot roots: fns whose item starts on a line covered by a
    // `// srlint: hot` note.
    let mut roots: Vec<usize> = Vec::new();
    let mut hot_used: BTreeSet<(usize, usize)> = BTreeSet::new();
    for id in 0..n {
        let def = &graph.defs[id];
        let fm = graph.meta(files, id);
        for (ni, note) in files[def.file].lexed.hot_notes.iter().enumerate() {
            if note.covers.contains(&fm.start_line) {
                roots.push(id);
                hot_used.insert((def.file, ni));
            }
        }
    }

    // Direct property sites per function (first site each).
    let mut alloc: Vec<Option<Site>> = vec![None; n];
    let mut lock: Vec<Option<Site>> = vec![None; n];
    let mut io: Vec<Option<Site>> = vec![None; n];
    for id in 0..n {
        let def = &graph.defs[id];
        let fm = graph.meta(files, id);
        let tokens = &files[def.file].lexed.tokens;
        if fm.is_io_marked {
            io[id] = Some(Site {
                line: fm.line,
                col: fm.col,
                desc: format!("`{}()` is `#[doc = \"srlint: io\"]`-marked", def.name),
            });
        }
        for k in fm.body.open + 1..fm.body.close.min(tokens.len()) {
            let t = &tokens[k];
            if t.kind != Kind::Ident {
                continue;
            }
            let site = |desc: String| Site {
                line: t.line,
                col: t.col,
                desc,
            };
            let next_is = |c: char| tokens.get(k + 1).is_some_and(|x| x.is_punct(c));
            // Macros: `format!` / `vec!`.
            if ALLOC_MACROS.contains(&t.text.as_str()) && next_is('!') {
                if alloc[id].is_none() {
                    alloc[id] = Some(site(format!("`{}!` expansion", t.text)));
                }
                continue;
            }
            if !next_is('(') {
                continue;
            }
            // `Vec::new(` / `Box::new(`.
            if t.text == "new"
                && k >= 3
                && tokens[k - 1].is_punct(':')
                && tokens[k - 2].is_punct(':')
                && tokens
                    .get(k - 3)
                    .is_some_and(|p| p.is_ident("Vec") || p.is_ident("Box"))
            {
                if alloc[id].is_none() {
                    alloc[id] = Some(site(format!("`{}::new()`", tokens[k - 3].text)));
                }
                continue;
            }
            // `.to_vec(` / `.collect(` / `.clone(`.
            if ALLOC_METHODS.contains(&t.text.as_str()) && k > 0 && tokens[k - 1].is_punct('.') {
                if alloc[id].is_none() {
                    alloc[id] = Some(site(format!("`.{}()`", t.text)));
                }
                continue;
            }
            // Zero-argument `.lock()` / `.read()` / `.write()`.
            if is_acquisition(tokens, k) {
                if lock[id].is_none() {
                    let class = receiver_class(tokens, k - 1).unwrap_or_default();
                    lock[id] = Some(site(format!("`.{}()` on `{class}`", t.text)));
                }
                continue;
            }
            // I/O registry calls.
            if io_fns.contains(&t.text) && io[id].is_none() {
                io[id] = Some(site(format!("I/O call `{}()`", t.text)));
            }
        }
    }

    for (fi, ni) in hot_used {
        files[fi].lexed.hot_notes[ni].used = true;
    }

    let families = [
        Family {
            tail: "hot-alloc",
            what: "heap allocation",
            direct: alloc,
        },
        Family {
            tail: "hot-lock",
            what: "lock acquisition",
            direct: lock,
        },
        Family {
            tail: "hot-io",
            what: "store I/O",
            direct: io,
        },
    ];

    let mut findings: Vec<(usize, u32, u32, &'static str, String)> = Vec::new();
    for fam in &families {
        let flags: Vec<bool> = fam.direct.iter().map(Option::is_some).collect();
        let reach = graph.reaches(&flags);
        for &root in &roots {
            if !reach[root] {
                continue;
            }
            let Some(path) = graph.path_to(root, &flags) else {
                continue;
            };
            let offender = *path.last().unwrap_or(&root);
            let Some(op) = &fam.direct[offender] else {
                continue;
            };
            let chain: Vec<&str> = path.iter().map(|&v| graph.defs[v].name.as_str()).collect();
            let root_def = &graph.defs[root];
            let (line, col, how) = if path.len() == 1 {
                (
                    op.line,
                    op.col,
                    format!("{} on the hot path: {}", fam.what, op.desc),
                )
            } else {
                let e = graph.edge_to(root, path[1]);
                let (l, c) = e.map_or((op.line, op.col), |e| (e.line, e.col));
                (
                    l,
                    c,
                    format!(
                        "reaches {} in `{}()` (call chain: {}): {} at {}:{}",
                        fam.what,
                        graph.defs[offender].name,
                        chain.join(" -> "),
                        op.desc,
                        files[graph.defs[offender].file].path,
                        op.line,
                    ),
                )
            };
            findings.push((
                root_def.file,
                line,
                col,
                fam.tail,
                format!(
                    "hot fn `{}()` {how}; hot regions must stay free of allocation, \
                     locks, and store I/O — restructure, or hatch with `allow({})`",
                    root_def.name, fam.tail
                ),
            ));
        }
    }

    findings.sort_by(|a, b| (a.0, a.1, a.2, a.3).cmp(&(b.0, b.1, b.2, b.3)));
    for (fi, line, col, tail, message) in findings {
        if !files[fi].lexed.allow(tail, line) {
            diags.push(Diagnostic {
                file: files[fi].path.clone(),
                line,
                col,
                rule: format!("L10/{tail}"),
                message,
            });
        }
    }
}
