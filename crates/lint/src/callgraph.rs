//! Workspace call graph for the interprocedural passes (L9 taint,
//! L10 hot-path purity), plus the shared per-file function registry
//! every scope-aware pass draws from.
//!
//! The graph is structural, not type-checked. Each function item in
//! every lib crate becomes a node; call sites inside bodies become
//! edges, resolved in order of decreasing precision:
//!
//! 1. **Receiver-typed method calls** — `self.f()` resolves through the
//!    enclosing impl's type, `param.f()` through the parameter's type
//!    identifiers (the same maps L4/L7 use for guard receivers).
//! 2. **Path-qualified calls** — `Ty::f()` resolves against the
//!    registry of `impl Ty` functions.
//! 3. **Name-match degradation** — anything else (trait-object calls,
//!    locals of unknown type, free functions) edges to *every*
//!    workspace function of that name. Over-approximate by design: a
//!    `dyn SpatialIndex` call fans out to all five trees.
//!
//! Lock-method names (`lock`/`read`/`write`) and `drop` never produce
//! name-match edges — the std-wrapper shims would otherwise alias every
//! call through them (the same exclusion L4 applies to its summaries).
//!
//! Propagation queries ([`CallGraph::reaches`]) condense the graph into
//! strongly connected components first, so recursion and mutual
//! recursion terminate: an SCC has a property iff any member has it
//! directly or any out-edge target SCC has it.

use std::collections::BTreeMap;

use crate::lexer::{Kind, Lexed, Token};
use crate::parser::{Block, Item, ItemKind};
use crate::ParsedFile;

/// One function definition extracted at prep time and shared across
/// the passes (L4 guard walk, call-graph construction, L9, L10).
#[derive(Clone, Debug)]
pub struct FnMeta {
    pub name: String,
    /// Self type of the enclosing impl, if any.
    pub self_ty: Option<String>,
    /// `(name, type identifier tokens)` per named parameter.
    pub params: Vec<(String, Vec<String>)>,
    pub body: Block,
    /// First source line covered by the item (attributes included).
    pub start_line: u32,
    /// Position of the fn name.
    pub line: u32,
    pub col: u32,
    /// Whether the item sits inside test-masked code.
    pub is_test: bool,
    /// Whether the item carries `#[doc = "srlint: io"]`.
    pub is_io_marked: bool,
}

/// Collect every fn item (with a body) into the shared registry, in
/// item-tree order, tracking the enclosing impl's self type.
pub fn collect_fn_metas(items: &[Item], lexed: &Lexed) -> Vec<FnMeta> {
    let mut out = Vec::new();
    collect_inner(items, lexed, None, &mut out);
    out
}

fn collect_inner(items: &[Item], lexed: &Lexed, self_ty: Option<&str>, out: &mut Vec<FnMeta>) {
    for item in items {
        if item.kind == ItemKind::Fn {
            if let Some(b) = &item.body {
                out.push(FnMeta {
                    name: item.name.clone(),
                    self_ty: self_ty.map(str::to_string),
                    params: fn_params(&lexed.tokens, item.first, b.open),
                    body: b.clone(),
                    start_line: item.start_line(&lexed.tokens),
                    line: item.line,
                    col: item.col,
                    is_test: lexed.test_mask.get(item.first).copied().unwrap_or(false),
                    is_io_marked: item.has_doc_marker("srlint: io"),
                });
            }
        }
        let child_self = if item.kind == ItemKind::Impl {
            item.impl_ty.first().map(String::as_str)
        } else {
            self_ty
        };
        collect_inner(&item.children, lexed, child_self, out);
    }
}

/// Parse `(name, type idents)` for each named parameter of a fn item:
/// the first `(`..`)` group after the `fn` keyword outside generic
/// brackets. `self` receivers and non-trivial patterns are skipped.
pub(crate) fn fn_params(
    tokens: &[Token],
    item_first: usize,
    body_open: usize,
) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    let mut j = item_first;
    while j < body_open && !tokens[j].is_ident("fn") {
        j += 1;
    }
    let mut angle = 0usize;
    let mut open = None;
    for (k, t) in tokens.iter().enumerate().take(body_open).skip(j) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = angle.saturating_sub(1);
        } else if t.is_punct('(') && angle == 0 {
            open = Some(k);
            break;
        }
    }
    let Some(open) = open else { return out };
    let close = match_paren(tokens, open, body_open);
    let mut seg = open + 1;
    while seg < close {
        let mut depth = 0usize;
        let mut end = seg;
        while end < close {
            let t = &tokens[end];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct(',') && depth == 0 {
                break;
            }
            end += 1;
        }
        // One parameter in [seg, end): `mut? name : type...`.
        let mut p = seg;
        if tokens.get(p).is_some_and(|t| t.is_ident("mut")) {
            p += 1;
        }
        if let Some(name) = tokens.get(p).filter(|t| t.kind == Kind::Ident) {
            if tokens.get(p + 1).is_some_and(|t| t.is_punct(':')) {
                let tidents = tokens[p + 2..end]
                    .iter()
                    .filter(|t| t.kind == Kind::Ident)
                    .map(|t| t.text.clone())
                    .collect();
                out.push((name.text.clone(), tidents));
            }
        }
        seg = end + 1;
    }
    out
}

/// Index of the `)` matching the `(` at `open`, clamped to `end`.
pub(crate) fn match_paren(tokens: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens
        .iter()
        .enumerate()
        .take(end.min(tokens.len()))
        .skip(open)
    {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    end.min(tokens.len())
}

/// One graph node: which file and which entry of that file's shared
/// `fns` registry it refers to, with the name/type copied out so graph
/// queries do not need the file list.
#[derive(Clone, Debug)]
pub struct Def {
    /// Index into the parsed-file slice the graph was built from.
    pub file: usize,
    /// Index into that file's `fns` vector.
    pub idx: usize,
    pub name: String,
    pub self_ty: Option<String>,
    /// Crate the file belongs to.
    pub krate: String,
}

/// One resolved call edge, anchored at its call-site token.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Callee node id.
    pub callee: usize,
    /// Token index of the callee name at the call site.
    pub token: usize,
    pub line: u32,
    pub col: u32,
}

/// Call names that never produce name-match edges: the std lock
/// methods and `drop` (the same exclusion L4 applies), plus method
/// names ubiquitous on std containers — an untyped `out.clear()` on a
/// `Vec` must not alias every workspace fn that happens to be called
/// `clear`. Workspace functions with these names still resolve through
/// typed receivers (`self.f()`, a typed param, `Ty::f()`); only the
/// name-match fallback is cut. This is a documented false-negative
/// class: an untyped call to a workspace fn named e.g. `insert` is
/// invisible to the graph.
const NO_NAME_MATCH: &[&str] = &[
    "lock",
    "read",
    "write",
    "drop",
    "clear",
    "len",
    "is_empty",
    "take",
    "min",
    "max",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "contains",
    "iter",
    "next",
    "extend",
    "resize",
    "reserve",
    "from",
    "into",
    "new",
    "default",
    "fmt",
    "to_string",
    "eq",
    "cmp",
    "hash",
    "as_ref",
    "deref",
];

/// The workspace call graph.
pub struct CallGraph {
    pub defs: Vec<Def>,
    /// Per-node outgoing edges, in body token order.
    pub calls: Vec<Vec<Edge>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_ty: BTreeMap<(String, String), Vec<usize>>,
}

impl CallGraph {
    /// Build the graph over parsed files; `crate_of[i]` names the crate
    /// of `files[i]`. Test-masked functions are excluded.
    pub fn build(files: &[ParsedFile], crate_of: &[String]) -> CallGraph {
        let mut defs = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_ty: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (mi, fm) in f.fns.iter().enumerate() {
                if fm.is_test {
                    continue;
                }
                let id = defs.len();
                by_name.entry(fm.name.clone()).or_default().push(id);
                if let Some(ty) = &fm.self_ty {
                    by_ty
                        .entry((ty.clone(), fm.name.clone()))
                        .or_default()
                        .push(id);
                }
                defs.push(Def {
                    file: fi,
                    idx: mi,
                    name: fm.name.clone(),
                    self_ty: fm.self_ty.clone(),
                    krate: crate_of.get(fi).cloned().unwrap_or_default(),
                });
            }
        }
        let mut graph = CallGraph {
            defs,
            calls: Vec::new(),
            by_name,
            by_ty,
        };
        let mut calls = Vec::with_capacity(graph.defs.len());
        for id in 0..graph.defs.len() {
            calls.push(graph.scan_calls(files, id));
        }
        graph.calls = calls;
        graph
    }

    pub fn meta<'a>(&self, files: &'a [ParsedFile], id: usize) -> &'a FnMeta {
        &files[self.defs[id].file].fns[self.defs[id].idx]
    }

    /// All call edges out of `id`, one per (site, callee) pair.
    fn scan_calls(&self, files: &[ParsedFile], id: usize) -> Vec<Edge> {
        let def = &self.defs[id];
        let fm = &files[def.file].fns[def.idx];
        let tokens = &files[def.file].lexed.tokens;
        let mut out = Vec::new();
        for k in fm.body.open + 1..fm.body.close.min(tokens.len()) {
            let t = &tokens[k];
            if t.kind != Kind::Ident || !tokens.get(k + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            for callee in self.resolve_call(tokens, fm, k) {
                if out
                    .iter()
                    .any(|e: &Edge| e.token == k && e.callee == callee)
                {
                    continue;
                }
                out.push(Edge {
                    callee,
                    token: k,
                    line: t.line,
                    col: t.col,
                });
            }
        }
        out
    }

    /// Resolve the call whose callee name is the ident at `k` (followed
    /// by `(`) inside `caller`'s body. Returns every candidate callee.
    pub fn resolve_call(&self, tokens: &[Token], caller: &FnMeta, k: usize) -> Vec<usize> {
        let name = tokens[k].text.as_str();
        // Method call: `recv.name(...)`.
        if k >= 2 && tokens[k - 1].is_punct('.') {
            let recv = &tokens[k - 2];
            if recv.is_ident("self") {
                if let Some(ty) = &caller.self_ty {
                    if let Some(ids) = self.by_ty.get(&(ty.clone(), name.to_string())) {
                        return ids.clone();
                    }
                }
            } else if recv.kind == Kind::Ident {
                if let Some((_, tidents)) = caller.params.iter().find(|(p, _)| p == &recv.text) {
                    for ty in tidents {
                        if let Some(ids) = self.by_ty.get(&(ty.clone(), name.to_string())) {
                            return ids.clone();
                        }
                    }
                }
            }
            // Unknown receiver (trait object, local, chained call):
            // degrade to name-match.
            return self.name_match(name);
        }
        // Path-qualified call: `Ty::name(...)`.
        if k >= 3 && tokens[k - 1].is_punct(':') && tokens[k - 2].is_punct(':') {
            if let Some(ty) = tokens.get(k - 3).filter(|t| t.kind == Kind::Ident) {
                if let Some(ids) = self.by_ty.get(&(ty.text.clone(), name.to_string())) {
                    return ids.clone();
                }
            }
            return self.name_match(name);
        }
        // Free call.
        self.name_match(name)
    }

    fn name_match(&self, name: &str) -> Vec<usize> {
        if NO_NAME_MATCH.contains(&name) {
            return Vec::new();
        }
        self.by_name.get(name).cloned().unwrap_or_default()
    }

    /// Strongly connected components, emitted callees-first: every
    /// out-edge of a component targets an earlier-emitted component
    /// (iterative Tarjan, so recursion in the analyzed code cannot
    /// overflow the analyzer's stack).
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.defs.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();
        // Explicit DFS frames: (node, next-edge cursor).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            frames.push((start, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                if *cursor < self.calls[v].len() {
                    let w = self.calls[v][*cursor].callee;
                    *cursor += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// For each node, whether it reaches (itself included) a node with
    /// `direct[..]` set, walking call edges. Condenses to SCCs first so
    /// cycles terminate.
    pub fn reaches(&self, direct: &[bool]) -> Vec<bool> {
        let sccs = self.sccs();
        let n = self.defs.len();
        let mut comp_of = vec![0usize; n];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                comp_of[v] = ci;
            }
        }
        let mut comp_reaches = vec![false; sccs.len()];
        // Tarjan emits callee components before caller components, so a
        // single forward pass settles the DAG.
        for (ci, comp) in sccs.iter().enumerate() {
            let mut hit = comp
                .iter()
                .any(|&v| direct.get(v).copied().unwrap_or(false));
            if !hit {
                hit = comp
                    .iter()
                    .flat_map(|&v| self.calls[v].iter())
                    .any(|e| comp_reaches[comp_of[e.callee]]);
            }
            comp_reaches[ci] = hit;
        }
        (0..n).map(|v| comp_reaches[comp_of[v]]).collect()
    }

    /// Shortest call chain (BFS over edges) from `from` to any node
    /// with `direct[..]` set, as a node-id path including both ends.
    /// `None` when unreachable. `from` itself counts when direct.
    pub fn path_to(&self, from: usize, direct: &[bool]) -> Option<Vec<usize>> {
        if direct.get(from).copied().unwrap_or(false) {
            return Some(vec![from]);
        }
        let n = self.defs.len();
        let mut prev = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[from] = true;
        queue.push_back(from);
        while let Some(v) = queue.pop_front() {
            for e in &self.calls[v] {
                let w = e.callee;
                if seen[w] {
                    continue;
                }
                seen[w] = true;
                prev[w] = v;
                if direct.get(w).copied().unwrap_or(false) {
                    let mut path = vec![w];
                    let mut cur = w;
                    while prev[cur] != usize::MAX {
                        cur = prev[cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(w);
            }
        }
        None
    }

    /// The edge in `from`'s body that begins the chain toward `next`
    /// (for anchoring interprocedural diagnostics at a call site).
    pub fn edge_to(&self, from: usize, next: usize) -> Option<&Edge> {
        self.calls[from].iter().find(|e| e.callee == next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{guarded, lexer, parser};

    fn parse_one(path: &str, src: &str) -> ParsedFile {
        let mut lx = lexer::lex(src);
        let items = parser::parse(&lx.tokens);
        let structs = guarded::collect_structs(&mut lx, &items);
        let fns = collect_fn_metas(&items, &lx);
        ParsedFile {
            path: path.to_string(),
            lexed: lx,
            items,
            structs,
            fns,
        }
    }

    fn build(sources: &[(&str, &str, &str)]) -> (CallGraph, Vec<ParsedFile>) {
        let files: Vec<ParsedFile> = sources
            .iter()
            .map(|(_, path, src)| parse_one(path, src))
            .collect();
        let crate_of: Vec<String> = sources.iter().map(|(k, _, _)| k.to_string()).collect();
        let graph = CallGraph::build(&files, &crate_of);
        (graph, files)
    }

    fn id_of(graph: &CallGraph, name: &str) -> usize {
        graph
            .defs
            .iter()
            .position(|d| d.name == name)
            .unwrap_or_else(|| panic!("no fn named {name}"))
    }

    #[test]
    fn receiver_typed_call_resolves_through_param_type() {
        let (graph, _) = build(&[(
            "a",
            "a/src/lib.rs",
            "pub struct Codec {}\n\
             impl Codec { pub fn decode(&self) {} }\n\
             pub struct Other {}\n\
             impl Other { pub fn decode(&self) {} }\n\
             pub fn run(c: &Codec) { c.decode(); }\n",
        )]);
        let run = id_of(&graph, "run");
        let callees: Vec<&str> = graph.calls[run]
            .iter()
            .map(|e| graph.defs[e.callee].name.as_str())
            .collect();
        assert_eq!(callees, ["decode"]);
        // Typed resolution picked Codec::decode, not Other::decode.
        assert_eq!(
            graph.defs[graph.calls[run][0].callee].self_ty.as_deref(),
            Some("Codec")
        );
    }

    #[test]
    fn trait_object_call_degrades_to_name_match() {
        let (graph, _) = build(&[(
            "a",
            "a/src/lib.rs",
            "pub trait Index { fn query(&self); }\n\
             pub struct TreeA {}\n\
             impl Index for TreeA { fn query(&self) {} }\n\
             pub struct TreeB {}\n\
             impl Index for TreeB { fn query(&self) {} }\n\
             pub fn dispatch(idx: &dyn Index) { idx.query(); }\n",
        )]);
        let dispatch = id_of(&graph, "dispatch");
        // The dyn receiver resolves to no single impl, so the call fans
        // out to every `query` in the registry.
        assert_eq!(graph.calls[dispatch].len(), 2);
    }

    #[test]
    fn cross_crate_call_resolves_through_workspace_registry() {
        let (graph, _) = build(&[
            (
                "pager",
                "pager/src/lib.rs",
                "pub struct PageBuf {}\n\
                 impl PageBuf { pub fn header(&self) -> u16 { 0 } }\n",
            ),
            (
                "core",
                "core/src/lib.rs",
                "use pager::PageBuf;\n\
                 pub fn read(buf: &PageBuf) { buf.header(); }\n",
            ),
        ]);
        let read = id_of(&graph, "read");
        assert_eq!(graph.calls[read].len(), 1);
        let callee = &graph.defs[graph.calls[read][0].callee];
        assert_eq!(
            (callee.krate.as_str(), callee.name.as_str()),
            ("pager", "header")
        );
    }

    #[test]
    fn recursion_and_mutual_recursion_terminate_in_one_scc() {
        let (graph, _) = build(&[(
            "a",
            "a/src/lib.rs",
            "pub fn ping(n: u32) { pong(n); }\n\
             pub fn pong(n: u32) { ping(n); }\n\
             pub fn rec(n: u32) { rec(n); }\n\
             pub fn leaf() {}\n",
        )]);
        let sccs = graph.sccs();
        let ping = id_of(&graph, "ping");
        let pong = id_of(&graph, "pong");
        let rec = id_of(&graph, "rec");
        let cyc: Vec<&Vec<usize>> = sccs.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(cyc.len(), 1);
        assert_eq!(*cyc[0], {
            let mut v = vec![ping, pong];
            v.sort_unstable();
            v
        });
        // Self-recursion stays a singleton SCC but still terminates in
        // reachability queries.
        let mut direct = vec![false; graph.defs.len()];
        direct[id_of(&graph, "leaf")] = true;
        let reach = graph.reaches(&direct);
        assert!(!reach[rec], "self-recursive fn never reaches leaf");
        assert!(!reach[ping] && !reach[pong]);
    }

    #[test]
    fn reaches_propagates_transitively_and_path_is_reconstructible() {
        let (graph, _) = build(&[(
            "a",
            "a/src/lib.rs",
            "pub fn top() { mid(); }\n\
             pub fn mid() { bottom(); }\n\
             pub fn bottom() { let v: Vec<u32> = Vec::new(); drop(v); }\n\
             pub fn other() {}\n",
        )]);
        let top = id_of(&graph, "top");
        let bottom = id_of(&graph, "bottom");
        let mut direct = vec![false; graph.defs.len()];
        direct[bottom] = true;
        let reach = graph.reaches(&direct);
        assert!(reach[top] && reach[bottom]);
        assert!(!reach[id_of(&graph, "other")]);
        let path = graph.path_to(top, &direct).expect("path exists");
        let names: Vec<&str> = path.iter().map(|&v| graph.defs[v].name.as_str()).collect();
        assert_eq!(names, ["top", "mid", "bottom"]);
    }

    #[test]
    fn lock_methods_never_name_match() {
        let (graph, _) = build(&[(
            "a",
            "a/src/lib.rs",
            "pub fn read() {}\n\
             pub fn caller(x: &u32) { let _ = x.read(); }\n",
        )]);
        let caller = id_of(&graph, "caller");
        assert!(graph.calls[caller].is_empty());
    }
}
