//! srlint — offline static analysis for the SR-tree workspace.
//!
//! A dependency-free lint pass (no `syn`, no registry crates) built on a
//! hand-rolled Rust lexer. Three rule families guard the invariants the
//! fault-injection and differential-fuzz suites rely on:
//!
//! * **L1/panic** — library crates must not call `unwrap()`, `expect()`,
//!   `panic!`, `unreachable!`, `todo!`, or `unimplemented!` outside test
//!   code; every fallible path returns a typed error.
//! * **L2/index, L2/cast** — the geometry distance kernels and the pager
//!   page codec (the files where an out-of-bounds access or silent
//!   narrowing corrupts query results) must not use slice indexing or
//!   `as` numeric casts.
//! * **L3/error-type, L3/dead-variant** — public `Result`-returning
//!   functions name crate-local typed errors, and every error variant is
//!   constructed somewhere.
//!
//! On top of the token passes, a structural parser ([`parser`])
//! recovers the item tree and block structure, feeding three
//! scope-aware passes:
//!
//! * **L4/lock-order, L4/lock-io, L4/lock-cycle** ([`locks`]) — guard
//!   lifetimes modeled from `Mutex`/`RwLock` bindings; violations of
//!   `// srlint: lock-order(a < b) -- reason` declarations, I/O calls
//!   under a guard, and cycles in the acquisition graph.
//! * **L5/ordering, L5/ordering-relaxed, L5/ordering-unused**
//!   ([`ordering`]) — every atomic `Ordering::` argument needs a
//!   same-item `// srlint: ordering -- reason` note; `Relaxed` on the
//!   accounting files must state its invariant.
//! * **L6/error-conversion, L6/swallowed-error, L6/stale-deprecated**
//!   ([`errors`]) — `?` in public fns must convert into the function's
//!   typed error through a `From` chain, typed errors must not be
//!   silently swallowed, and `#[deprecated]` items expire after one PR.
//! * **L7/unguarded-access, L7/bad-annotation, L7/unprotected-shared**
//!   ([`guarded`]) — `// srlint: guarded-by(<lock>)` field annotations
//!   checked against the L4 held-guard walk: every resolved access to a
//!   guarded field must happen under its lock, annotations must name
//!   real locks, and fields of thread-shared structs must be guarded,
//!   atomic, or themselves audited.
//! * **L8/unsafe-impl, L8/missing-note, L8/interior-mutability,
//!   L8/send-sync-unused** ([`sendsync`]) — the Send/Sync boundary
//!   audit: no hand-written `unsafe impl Send/Sync`, and every type
//!   crossing the executor thread scope (or owning lock/atomic state)
//!   carries a reasoned `// srlint: send-sync -- reason` note.
//!
//! A workspace call graph ([`callgraph`]) built over the shared
//! function registry feeds two interprocedural families:
//!
//! * **L9/unchecked-length, L9/unchecked-offset, L9/tainted-alloc**
//!   ([`taint`]) — values produced by untrusted decoders (wire frame
//!   reads, pager leaf/WAL header reads, anything marked
//!   `// srlint: untrusted-source -- reason`) must flow through a
//!   dominating validation (`checked_*`, a comparison against a buffer
//!   length, `try_into`, or `// srlint: validated(<expr>) -- reason`)
//!   before becoming a slice length, byte offset, capacity, or loop
//!   bound. Taint propagates through return values and arguments via
//!   the call graph.
//! * **L10/hot-alloc, L10/hot-lock, L10/hot-io** ([`hot`]) — functions
//!   annotated `// srlint: hot` must be transitively free of heap
//!   allocation, lock acquisition, and store I/O; diagnostics carry the
//!   offending call chain.
//!
//! The escape hatch is `// srlint: allow(<rule>) -- <reason>`, where
//! `<rule>` is the rule id's tail (`panic`, `assert`, `index`, `cast`,
//! `error-type`, `dead-variant`, `lock-order`, `lock-io`,
//! `lock-cycle`, `guard-escape`, `ordering`, `ordering-relaxed`,
//! `ordering-unused`, `error-conversion`, `swallowed-error`,
//! `stale-deprecated`, `unguarded-access`, `bad-annotation`,
//! `unprotected-shared`, `unsafe-impl`, `missing-note`,
//! `interior-mutability`, `send-sync-unused`, `unchecked-length`,
//! `unchecked-offset`, `tainted-alloc`, `hot-alloc`, `hot-lock`,
//! `hot-io`). A hatch covers its own line and the next code line;
//! unused or malformed hatches are themselves violations. Used
//! `validated(...)` notes count against the same hatch budget —
//! they are suppressions, just anchored to a value instead of a line.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod errors;
pub mod guarded;
pub mod hot;
pub mod lexer;
pub mod locks;
pub mod ordering;
pub mod parser;
pub mod rules;
pub mod sendsync;
pub mod taint;

use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::Lexed;
use parser::{Item, ItemKind};

/// Library crates under the L1 and L3 rules (directory names under
/// `crates/`).
pub const LIB_CRATES: &[&str] = &[
    "pager", "geometry", "core", "sstree", "rstar", "kdbtree", "vamsplit", "query", "obs", "exec",
    "wire", "serve",
];

/// Hot-path files under the L2 rules, relative to the workspace root.
pub const L2_FILES: &[&str] = &[
    "crates/geometry/src/kernel.rs",
    "crates/geometry/src/rect.rs",
    "crates/geometry/src/sphere.rs",
    "crates/geometry/src/vector.rs",
    "crates/pager/src/leaf.rs",
    "crates/pager/src/page.rs",
];

/// Files feeding the misses == physical-reads accounting: `Relaxed`
/// atomics here need an explicit invariant note (L5).
pub const ACCOUNTING_FILES: &[&str] = &["crates/pager/src/stats.rs"];

/// Built-in I/O function registry for L4's guard-across-I/O rule, on
/// top of `#[doc = "srlint: io"]` markers.
pub const IO_FNS: &[&str] = &[
    "read_page",
    "write_page",
    "grow",
    "sync",
    "sync_data",
    "read_exact_at",
    "write_all_at",
    "set_len",
    "read_to_string",
];

/// One lexed and parsed source file, threaded through the passes.
/// Everything here is computed exactly once per file (in the parallel
/// prep phase) and shared by all ten passes.
pub struct ParsedFile {
    /// Path relative to the workspace root.
    pub path: String,
    pub lexed: Lexed,
    pub items: Vec<Item>,
    /// Named-field structs with attached guarded-by notes (L7/L8).
    pub structs: Vec<guarded::StructInfo>,
    /// Function registry: bodies with signature context, shared by the
    /// L4 guard walk, the call graph, and the L9/L10 passes.
    pub fns: Vec<callgraph::FnMeta>,
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Rule id, e.g. `L1/panic`.
    pub rule: String,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A source file handed to the linter.
pub struct SourceFile {
    /// Display path (workspace-relative for real runs).
    pub path: String,
    pub source: String,
    /// Whether the file is under the L2 hot-path audit.
    pub l2: bool,
}

/// All sources of one library crate.
pub struct CrateSources {
    pub name: String,
    pub files: Vec<SourceFile>,
}

/// The ten rule families, for per-family reporting and `--rule`.
pub const RULE_FAMILIES: &[&str] = &["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10"];

/// Result of a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
    /// Escape hatches that suppressed at least one finding (including
    /// used `validated(...)` notes — same budget).
    pub hatches_used: usize,
    /// Source files lexed and parsed (lib crates + census extras).
    pub files_scanned: usize,
    /// Wall-clock per analysis pass, accumulated across crates, in run
    /// order (for `--timings`; not part of the JSON report).
    pub timings: Vec<(String, std::time::Duration)>,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Keep only diagnostics of one family (`L7`) or one exact rule id
    /// (`L7/unguarded-access`). Hatch and file counts are unchanged —
    /// they describe the run, not the filter.
    pub fn retain_rule(&mut self, rule: &str) {
        let prefix = format!("{rule}/");
        self.diagnostics
            .retain(|d| d.rule == rule || d.rule.starts_with(&prefix));
    }

    /// Findings per family, in [`RULE_FAMILIES`] order (zeros included
    /// so CI gates can key on absent families).
    pub fn family_counts(&self) -> Vec<(&'static str, usize)> {
        RULE_FAMILIES
            .iter()
            .map(|fam| {
                let n = self
                    .diagnostics
                    .iter()
                    .filter(|d| d.rule.split('/').next() == Some(fam))
                    .count();
                (*fam, n)
            })
            .collect()
    }

    /// Machine-readable output for CI artifact upload.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  {},\n  \"violations\": [",
            sr_obs::schema_version_field()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&d.file),
                d.line,
                d.col,
                json_str(&d.rule),
                json_str(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str(&format!(
            "],\n  \"violation_count\": {},\n  \"families\": {{",
            self.diagnostics.len()
        ));
        for (i, (fam, n)) in self.family_counts().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{fam}\": {n}"));
        }
        s.push_str(&format!(
            "}},\n  \"files_scanned\": {},\n  \"hatches_used\": {}\n}}\n",
            self.files_scanned, self.hatches_used
        ));
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Per-crate bookkeeping over the flat parsed-file list.
struct CrateSpan {
    /// Index range into the parsed-file vector.
    range: std::ops::Range<usize>,
    /// L2 flags, parallel to the range.
    l2: Vec<bool>,
    has_alias: bool,
    alias_error: Option<String>,
    /// `lock-order(a < b)` declarations collected crate-wide.
    decls: Vec<(String, String)>,
}

/// Per-file output of the parallel lex/parse phase.
struct Prepped {
    lexed: Lexed,
    items: Vec<Item>,
    structs: Vec<guarded::StructInfo>,
    fns: Vec<callgraph::FnMeta>,
    has_alias: bool,
    decls: Vec<(String, String)>,
}

/// Lex, parse, struct-scan, and fn-scan one source file. Pure per-file
/// work — this is the unit the thread pool distributes, and the only
/// place a file's tokens are produced: every later pass shares these
/// artifacts.
fn prep_file(source: &str) -> Prepped {
    let mut lx = lexer::lex(source);
    let has_alias = rules::has_result_alias(&lx);
    let decls = lx
        .lock_orders
        .iter()
        .map(|d| (d.earlier.clone(), d.later.clone()))
        .collect();
    let items = parser::parse(&lx.tokens);
    let structs = guarded::collect_structs(&mut lx, &items);
    let fns = callgraph::collect_fn_metas(&items, &lx);
    Prepped {
        lexed: lx,
        items,
        structs,
        fns,
        has_alias,
        decls,
    }
}

/// Run [`prep_file`] over every source, optionally across threads.
/// Results land in input order regardless of thread count, so reports
/// are byte-identical to a serial run.
fn prep_all(jobs: &[&SourceFile], threads: usize) -> Vec<Prepped> {
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads <= 1 {
        return jobs.iter().map(|f| prep_file(&f.source)).collect();
    }
    let mut slots: Vec<Option<Prepped>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    let chunk = jobs.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (job_chunk, slot_chunk) in jobs.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            s.spawn(move || {
                for (f, slot) in job_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = Some(prep_file(&f.source));
                }
            });
        }
    });
    slots.into_iter().flatten().collect()
}

/// Lint a set of library crates. `extra_sources` (tests, benches, other
/// crates) feed the L3 dead-variant construction census only.
/// Single-threaded; see [`lint_crates_with`] for the parallel front
/// half.
pub fn lint_crates(crates: &[CrateSources], extra_sources: &[SourceFile]) -> LintReport {
    lint_crates_with(crates, extra_sources, 1)
}

/// [`lint_crates`] with the per-file lex/parse phase spread over up to
/// `threads` OS threads. The analysis phases stay serial (they are
/// cross-file); output is byte-identical for any thread count.
pub fn lint_crates_with(
    crates: &[CrateSources],
    extra_sources: &[SourceFile],
    threads: usize,
) -> LintReport {
    let mut diags = Vec::new();
    let mut enums = Vec::new();
    let mut constructed: HashSet<(String, String)> = HashSet::new();
    let mut timings: Vec<(String, std::time::Duration)> = Vec::new();

    // Phase 1: lex and parse every file (in parallel — per-file work
    // with no shared state), then fold the workspace-wide context the
    // scope-aware passes need — the I/O registry, the public-function
    // error registry with its `From` chains, and each crate's
    // lock-order declarations.
    let t0 = std::time::Instant::now();
    let jobs: Vec<&SourceFile> = crates.iter().flat_map(|k| k.files.iter()).collect();
    let mut prepped = prep_all(&jobs, threads).into_iter();
    let mut files: Vec<ParsedFile> = Vec::new();
    let mut crate_of: Vec<String> = Vec::new();
    let mut spans: Vec<CrateSpan> = Vec::new();
    let mut io_fns: HashSet<String> = IO_FNS.iter().map(|s| (*s).to_string()).collect();
    for krate in crates {
        let start = files.len();
        let mut l2 = Vec::new();
        let mut has_alias = false;
        let mut decls = Vec::new();
        for file in &krate.files {
            let p = prepped.next().expect("one prep result per job");
            has_alias |= p.has_alias;
            decls.extend(p.decls);
            collect_io_markers(&p.items, &mut io_fns);
            l2.push(file.l2);
            crate_of.push(krate.name.clone());
            files.push(ParsedFile {
                path: file.path.clone(),
                lexed: p.lexed,
                items: p.items,
                structs: p.structs,
                fns: p.fns,
            });
        }
        let alias_error = errors::crate_alias_error(&files[start..]);
        spans.push(CrateSpan {
            range: start..files.len(),
            l2,
            has_alias,
            alias_error,
            decls,
        });
    }
    let mut registry = errors::ErrorRegistry::default();
    for span in &spans {
        errors::collect_registry(
            &files[span.range.clone()],
            span.alias_error.as_deref(),
            &mut registry,
        );
    }
    // Send-sync notes attach workspace-wide before the per-crate
    // passes: a tree's `pf: PageFile` field is self-protecting only
    // because the pager crate's note says so.
    let noted = sendsync::collect_noted(&mut files);
    add_timing(&mut timings, "prep", t0.elapsed());

    // Phase 2: run the per-crate passes.
    for span in &spans {
        let crate_files = &mut files[span.range.clone()];
        let t = std::time::Instant::now();
        for (f, &l2) in crate_files.iter_mut().zip(&span.l2) {
            rules::l1_panic(&mut f.lexed, &f.path, &mut diags);
            rules::l1_assert(&mut f.lexed, &f.path, &mut diags);
            if l2 {
                rules::l2_hot_path(&mut f.lexed, &f.path, &mut diags);
            }
            rules::l3_result_signatures(&mut f.lexed, &f.path, span.has_alias, &mut diags);
            enums.extend(rules::collect_error_enums(&f.lexed, &f.path));
            rules::collect_constructions(&f.lexed, &mut constructed);
        }
        add_timing(&mut timings, "L1-L3", t.elapsed());
        let t = std::time::Instant::now();
        let classes = guarded::acquisition_classes(crate_files);
        let maps = guarded::l7_annotations(crate_files, &classes, &mut diags);
        add_timing(&mut timings, "L7", t.elapsed());
        let t = std::time::Instant::now();
        locks::l4_locks(crate_files, &io_fns, &span.decls, &maps, &mut diags);
        add_timing(&mut timings, "L4", t.elapsed());
        for f in crate_files.iter_mut() {
            let accounting = ACCOUNTING_FILES.contains(&f.path.as_str());
            let t = std::time::Instant::now();
            ordering::l5_ordering(&f.path, &mut f.lexed, &f.items, accounting, &mut diags);
            add_timing(&mut timings, "L5", t.elapsed());
            let t = std::time::Instant::now();
            errors::l6_errors(
                &f.path,
                &mut f.lexed,
                &f.items,
                &registry,
                span.alias_error.as_deref(),
                &mut diags,
            );
            add_timing(&mut timings, "L6", t.elapsed());
            let t = std::time::Instant::now();
            guarded::l7_unprotected(f, &noted, &mut diags);
            add_timing(&mut timings, "L7", t.elapsed());
            let t = std::time::Instant::now();
            sendsync::l8_boundary(f, &mut diags);
            add_timing(&mut timings, "L8", t.elapsed());
        }
    }
    let t = std::time::Instant::now();
    for file in extra_sources {
        let lx = lexer::lex(&file.source);
        rules::collect_constructions(&lx, &mut constructed);
    }
    rules::l3_dead_variants(&enums, &constructed, &mut files, &mut diags);
    add_timing(&mut timings, "L3-census", t.elapsed());

    // Phase 3: workspace-wide interprocedural passes over the call
    // graph (built once, shared by L9 and L10).
    let t = std::time::Instant::now();
    let graph = callgraph::CallGraph::build(&files, &crate_of);
    add_timing(&mut timings, "callgraph", t.elapsed());
    let t = std::time::Instant::now();
    taint::l9_taint(&graph, &mut files, &mut diags);
    add_timing(&mut timings, "L9", t.elapsed());
    let t = std::time::Instant::now();
    hot::l10_hot(&graph, &io_fns, &mut files, &mut diags);
    add_timing(&mut timings, "L10", t.elapsed());

    let t = std::time::Instant::now();
    let mut hatches_used = 0;
    for f in &files {
        rules::hatch_hygiene(&f.lexed, &f.path, &mut diags);
        hatches_used += f.lexed.hatches.iter().filter(|h| h.used).count();
        hatches_used += f.lexed.validated_notes.iter().filter(|n| n.used).count();
    }
    add_timing(&mut timings, "hygiene", t.elapsed());
    diags.sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    LintReport {
        diagnostics: diags,
        hatches_used,
        files_scanned: files.len() + extra_sources.len(),
        timings,
    }
}

/// Fold a pass duration into the per-pass accumulator.
fn add_timing(
    timings: &mut Vec<(String, std::time::Duration)>,
    name: &str,
    d: std::time::Duration,
) {
    match timings.iter_mut().find(|(n, _)| n == name) {
        Some(e) => e.1 += d,
        None => timings.push((name.to_string(), d)),
    }
}

/// Add every `#[doc = "srlint: io"]`-marked fn name to the I/O registry.
fn collect_io_markers(items: &[Item], io_fns: &mut HashSet<String>) {
    for item in items {
        if item.kind == ItemKind::Fn && item.has_doc_marker("srlint: io") {
            io_fns.insert(item.name.clone());
        }
        collect_io_markers(&item.children, io_fns);
    }
}

/// Walk the workspace at `root` and lint it with the project
/// configuration ([`LIB_CRATES`], [`L2_FILES`]).
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut crates = Vec::new();
    for name in LIB_CRATES {
        let dir = root.join("crates").join(name).join("src");
        let mut files = Vec::new();
        for path in rust_files(&dir)? {
            let rel = rel_path(root, &path);
            files.push(SourceFile {
                l2: L2_FILES.contains(&rel.as_str()),
                source: std::fs::read_to_string(&path)?,
                path: rel,
            });
        }
        crates.push(CrateSources {
            name: (*name).to_string(),
            files,
        });
    }
    // Everything else only feeds the construction census: other crates,
    // integration tests, benches, examples.
    let mut extra = Vec::new();
    for dir in ["crates", "src", "tests", "examples", "benches"] {
        let dir = root.join(dir);
        if !dir.exists() {
            continue;
        }
        for path in rust_files(&dir)? {
            let rel = rel_path(root, &path);
            let in_lib_src = LIB_CRATES
                .iter()
                .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
            // The linter's own fixtures deliberately violate the rules
            // and must not feed the census.
            if in_lib_src || rel.starts_with("crates/lint/tests/") {
                continue;
            }
            extra.push(SourceFile {
                path: rel,
                source: std::fs::read_to_string(&path)?,
                l2: false,
            });
        }
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    Ok(lint_crates_with(&crates, &extra, threads))
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// All `.rs` files under `dir`, sorted for deterministic reports.
fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if !d.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            let name = path.file_name().map(|n| n.to_string_lossy().to_string());
            if path.is_dir() {
                if name.as_deref() != Some("target") {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
