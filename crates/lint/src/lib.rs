//! srlint — offline static analysis for the SR-tree workspace.
//!
//! A dependency-free lint pass (no `syn`, no registry crates) built on a
//! hand-rolled Rust lexer. Three rule families guard the invariants the
//! fault-injection and differential-fuzz suites rely on:
//!
//! * **L1/panic** — library crates must not call `unwrap()`, `expect()`,
//!   `panic!`, `unreachable!`, `todo!`, or `unimplemented!` outside test
//!   code; every fallible path returns a typed error.
//! * **L2/index, L2/cast** — the geometry distance kernels and the pager
//!   page codec (the files where an out-of-bounds access or silent
//!   narrowing corrupts query results) must not use slice indexing or
//!   `as` numeric casts.
//! * **L3/error-type, L3/dead-variant** — public `Result`-returning
//!   functions name crate-local typed errors, and every error variant is
//!   constructed somewhere.
//!
//! The escape hatch is `// srlint: allow(<rule>) -- <reason>`, where
//! `<rule>` is `panic`, `index`, `cast`, `error-type`, or
//! `dead-variant`. A hatch covers its own line and the next code line;
//! unused or malformed hatches are themselves violations.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::Lexed;

/// Library crates under the L1 and L3 rules (directory names under
/// `crates/`).
pub const LIB_CRATES: &[&str] = &[
    "pager", "geometry", "core", "sstree", "rstar", "kdbtree", "vamsplit", "query", "obs", "exec",
];

/// Hot-path files under the L2 rules, relative to the workspace root.
pub const L2_FILES: &[&str] = &[
    "crates/geometry/src/rect.rs",
    "crates/geometry/src/sphere.rs",
    "crates/geometry/src/vector.rs",
    "crates/pager/src/page.rs",
];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Rule id, e.g. `L1/panic`.
    pub rule: String,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A source file handed to the linter.
pub struct SourceFile {
    /// Display path (workspace-relative for real runs).
    pub path: String,
    pub source: String,
    /// Whether the file is under the L2 hot-path audit.
    pub l2: bool,
}

/// All sources of one library crate.
pub struct CrateSources {
    pub name: String,
    pub files: Vec<SourceFile>,
}

/// Result of a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
    /// Escape hatches that suppressed at least one finding.
    pub hatches_used: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable output for CI artifact upload.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"violations\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&d.file),
                d.line,
                d.col,
                json_str(&d.rule),
                json_str(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str(&format!(
            "],\n  \"violation_count\": {},\n  \"hatches_used\": {}\n}}\n",
            self.diagnostics.len(),
            self.hatches_used
        ));
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lint a set of library crates. `extra_sources` (tests, benches, other
/// crates) feed the L3 dead-variant construction census only.
pub fn lint_crates(crates: &[CrateSources], extra_sources: &[SourceFile]) -> LintReport {
    let mut diags = Vec::new();
    let mut enums = Vec::new();
    let mut constructed: HashSet<(String, String)> = HashSet::new();
    // (path, lexed) pairs retained so the dead-variant pass can consume
    // hatches and the hygiene pass sees final usage.
    let mut lexed_files: Vec<(String, Lexed)> = Vec::new();

    for krate in crates {
        let mut crate_has_alias = false;
        let start = lexed_files.len();
        for file in &krate.files {
            let lx = lexer::lex(&file.source);
            crate_has_alias |= rules::has_result_alias(&lx);
            lexed_files.push((file.path.clone(), lx));
        }
        for (file, (path, lx)) in krate.files.iter().zip(&mut lexed_files[start..]) {
            rules::l1_panic(lx, path, &mut diags);
            if file.l2 {
                rules::l2_hot_path(lx, path, &mut diags);
            }
            rules::l3_result_signatures(lx, path, crate_has_alias, &mut diags);
            enums.extend(rules::collect_error_enums(lx, path));
            rules::collect_constructions(lx, &mut constructed);
        }
    }
    for file in extra_sources {
        let lx = lexer::lex(&file.source);
        rules::collect_constructions(&lx, &mut constructed);
    }
    rules::l3_dead_variants(&enums, &constructed, &mut lexed_files, &mut diags);
    let mut hatches_used = 0;
    for (path, lx) in &lexed_files {
        rules::hatch_hygiene(lx, path, &mut diags);
        hatches_used += lx.hatches.iter().filter(|h| h.used).count();
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    LintReport {
        diagnostics: diags,
        hatches_used,
    }
}

/// Walk the workspace at `root` and lint it with the project
/// configuration ([`LIB_CRATES`], [`L2_FILES`]).
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut crates = Vec::new();
    for name in LIB_CRATES {
        let dir = root.join("crates").join(name).join("src");
        let mut files = Vec::new();
        for path in rust_files(&dir)? {
            let rel = rel_path(root, &path);
            files.push(SourceFile {
                l2: L2_FILES.contains(&rel.as_str()),
                source: std::fs::read_to_string(&path)?,
                path: rel,
            });
        }
        crates.push(CrateSources {
            name: (*name).to_string(),
            files,
        });
    }
    // Everything else only feeds the construction census: other crates,
    // integration tests, benches, examples.
    let mut extra = Vec::new();
    for dir in ["crates", "src", "tests", "examples", "benches"] {
        let dir = root.join(dir);
        if !dir.exists() {
            continue;
        }
        for path in rust_files(&dir)? {
            let rel = rel_path(root, &path);
            let in_lib_src = LIB_CRATES
                .iter()
                .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
            // The linter's own fixtures deliberately violate the rules
            // and must not feed the census.
            if in_lib_src || rel.starts_with("crates/lint/tests/") {
                continue;
            }
            extra.push(SourceFile {
                path: rel,
                source: std::fs::read_to_string(&path)?,
                l2: false,
            });
        }
    }
    Ok(lint_crates(&crates, &extra))
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// All `.rs` files under `dir`, sorted for deterministic reports.
fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if !d.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            let name = path.file_name().map(|n| n.to_string_lossy().to_string());
            if path.is_dir() {
                if name.as_deref() != Some("target") {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
