//! A hand-rolled Rust lexer, just deep enough for the srlint rules.
//!
//! The lexer does not aim to be a full Rust grammar: it produces a flat
//! token stream (identifiers, numbers, literals, single-character
//! punctuation) with exact line/column positions, strips comments so
//! rule passes never match inside them (string literals keep their
//! source text so attribute markers like `#[doc = "srlint: io"]` stay
//! visible, but they lex as a single `Lit` token), extracts the
//! `// srlint:` directives (`allow(<rule>) -- <reason>` escape hatches,
//! `ordering -- <reason>` atomic-ordering justifications, and
//! `lock-order(<a> < <b>) -- <reason>` lock-order declarations), and
//! computes a per-token "test code" mask by matching `#[cfg(test)]` /
//! `#[test]` / `#[bench]` attributes to the item that follows them.

/// Token classes the rule passes distinguish.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (possibly including a fractional part).
    Num,
    /// String, raw-string, byte-string, or char literal (content dropped).
    Lit,
    /// Lifetime such as `'a`.
    Lifetime,
    /// One punctuation character.
    Punct(char),
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct(c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }
}

/// One `// srlint: allow(<rule>) -- <reason>` escape hatch. It suppresses
/// matching diagnostics on its own line (trailing comment) and on the
/// line of the next token after the comment block (preceding comment).
#[derive(Clone, Debug)]
pub struct Hatch {
    pub rule: String,
    /// Lines the hatch covers: its own and the next code line.
    pub covers: [u32; 2],
    /// Line of the hatch comment itself (for reporting).
    pub line: u32,
    /// Set by the rule passes when the hatch suppresses a diagnostic.
    pub used: bool,
}

/// One `// srlint: ordering -- <reason>` justification comment. The L5
/// pass attaches it to the innermost item containing its line.
#[derive(Clone, Debug)]
pub struct OrderingNote {
    pub line: u32,
    pub col: u32,
    pub reason: String,
    /// Set by L5 when the note justifies at least one `Ordering::` use.
    pub used: bool,
}

/// One `// srlint: lock-order(<earlier> < <later>) -- <reason>`
/// declaration: acquiring `earlier` while already holding `later` is a
/// violation; the declared direction is legal.
#[derive(Clone, Debug)]
pub struct LockOrderDecl {
    pub earlier: String,
    pub later: String,
    pub line: u32,
}

/// One `// srlint: guarded-by(<lock>)` field annotation. Like a hatch it
/// covers its own line (trailing comment) and the next code line
/// (preceding comment); the L7 pass attaches it to the struct field
/// declared on a covered line.
#[derive(Clone, Debug)]
pub struct GuardedByNote {
    /// Name of the lock field (or the reserved class `owner`).
    pub lock: String,
    /// Lines the note covers: its own and the next code line.
    pub covers: [u32; 2],
    pub line: u32,
    pub col: u32,
    /// Set by L7 when the note attaches to a struct field.
    pub used: bool,
}

/// One `// srlint: send-sync -- <reason>` note declaring why a type is
/// safe to share across the executor's thread scope. The L8 pass
/// attaches it to the struct whose span contains it (or that starts on
/// the next code line).
#[derive(Clone, Debug)]
pub struct SendSyncNote {
    /// Lines the note covers: its own and the next code line.
    pub covers: [u32; 2],
    pub line: u32,
    pub col: u32,
    pub reason: String,
    /// Set by L8 when the note attaches to a struct.
    pub used: bool,
}

/// One `// srlint: untrusted-source -- <reason>` note marking a
/// function as a taint source for L9: its return value derives from
/// bytes an attacker controls. Covers its own line and the next code
/// line; the L9 pass attaches it to the fn item starting on a covered
/// line.
#[derive(Clone, Debug)]
pub struct UntrustedNote {
    /// Lines the note covers: its own and the next code line.
    pub covers: [u32; 2],
    pub line: u32,
    pub col: u32,
    pub reason: String,
    /// Set by L9 when the note attaches to a fn item.
    pub used: bool,
}

/// One `// srlint: validated(<expr>) -- <reason>` sanitizer hatch for
/// L9: the named expression has been bounds-checked by logic the taint
/// pass cannot see. Covers its own line and the next code line; clears
/// taint for the named variable from the covered line onward.
#[derive(Clone, Debug)]
pub struct ValidatedNote {
    /// The validated expression (usually a variable name).
    pub expr: String,
    /// Lines the note covers: its own and the next code line.
    pub covers: [u32; 2],
    pub line: u32,
    pub col: u32,
    /// Set by L9 when the note suppresses at least one sink.
    pub used: bool,
}

/// One `// srlint: hot` annotation marking the next fn item as a
/// hot-region root for L10: it must be transitively free of heap
/// allocation, lock acquisition, and store I/O.
#[derive(Clone, Debug)]
pub struct HotNote {
    /// Lines the note covers: its own and the next code line.
    pub covers: [u32; 2],
    pub line: u32,
    pub col: u32,
    /// Set by L10 when the note attaches to a fn item.
    pub used: bool,
}

/// A lexed source file.
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub hatches: Vec<Hatch>,
    pub ordering_notes: Vec<OrderingNote>,
    pub lock_orders: Vec<LockOrderDecl>,
    pub guarded_notes: Vec<GuardedByNote>,
    pub send_sync_notes: Vec<SendSyncNote>,
    pub untrusted_notes: Vec<UntrustedNote>,
    pub validated_notes: Vec<ValidatedNote>,
    pub hot_notes: Vec<HotNote>,
    /// Positions of comments that start with `srlint:` but do not parse
    /// as a well-formed directive.
    pub malformed_hatches: Vec<(u32, u32)>,
    /// `true` for tokens inside `#[cfg(test)]` / `#[test]` items.
    pub test_mask: Vec<bool>,
}

impl Lexed {
    /// Consume a hatch for `rule` covering `line`, if one exists.
    pub fn allow(&mut self, rule: &str, line: u32) -> bool {
        for h in &mut self.hatches {
            if h.rule == rule && h.covers.contains(&line) {
                h.used = true;
                return true;
            }
        }
        false
    }
}

/// Lex a whole source file.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut hatches: Vec<Hatch> = Vec::new();
    let mut ordering_notes: Vec<OrderingNote> = Vec::new();
    let mut lock_orders: Vec<LockOrderDecl> = Vec::new();
    let mut guarded_notes: Vec<GuardedByNote> = Vec::new();
    let mut send_sync_notes: Vec<SendSyncNote> = Vec::new();
    let mut untrusted_notes: Vec<UntrustedNote> = Vec::new();
    let mut validated_notes: Vec<ValidatedNote> = Vec::new();
    let mut hot_notes: Vec<HotNote> = Vec::new();
    let mut malformed = Vec::new();
    // Hatches and notes waiting for the next token to learn which line
    // they cover.
    let mut pending: Vec<usize> = Vec::new();
    let mut pending_guarded: Vec<usize> = Vec::new();
    let mut pending_send_sync: Vec<usize> = Vec::new();
    let mut pending_untrusted: Vec<usize> = Vec::new();
    let mut pending_validated: Vec<usize> = Vec::new();
    let mut pending_hot: Vec<usize> = Vec::new();

    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push_tok {
        ($kind:expr, $text:expr, $line:expr, $col:expr) => {{
            for &h in &pending {
                hatches[h].covers[1] = $line;
            }
            pending.clear();
            for &g in &pending_guarded {
                guarded_notes[g].covers[1] = $line;
            }
            pending_guarded.clear();
            for &s in &pending_send_sync {
                send_sync_notes[s].covers[1] = $line;
            }
            pending_send_sync.clear();
            for &u in &pending_untrusted {
                untrusted_notes[u].covers[1] = $line;
            }
            pending_untrusted.clear();
            for &v in &pending_validated {
                validated_notes[v].covers[1] = $line;
            }
            pending_validated.clear();
            for &h in &pending_hot {
                hot_notes[h].covers[1] = $line;
            }
            pending_hot.clear();
            tokens.push(Token {
                kind: $kind,
                text: $text,
                line: $line,
                col: $col,
            });
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment: scan to end of line, check for a hatch.
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let trimmed = text.trim_start_matches(['/', '!']).trim();
                if let Some(rest) = trimmed.strip_prefix("srlint:") {
                    match parse_directive(rest) {
                        Some(Directive::Allow(rule)) => {
                            hatches.push(Hatch {
                                rule,
                                covers: [tl, tl],
                                line: tl,
                                used: false,
                            });
                            pending.push(hatches.len() - 1);
                        }
                        Some(Directive::Ordering(reason)) => {
                            ordering_notes.push(OrderingNote {
                                line: tl,
                                col: tc,
                                reason,
                                used: false,
                            });
                        }
                        Some(Directive::LockOrder(earlier, later)) => {
                            lock_orders.push(LockOrderDecl {
                                earlier,
                                later,
                                line: tl,
                            });
                        }
                        Some(Directive::GuardedBy(lock)) => {
                            guarded_notes.push(GuardedByNote {
                                lock,
                                covers: [tl, tl],
                                line: tl,
                                col: tc,
                                used: false,
                            });
                            pending_guarded.push(guarded_notes.len() - 1);
                        }
                        Some(Directive::SendSync(reason)) => {
                            send_sync_notes.push(SendSyncNote {
                                covers: [tl, tl],
                                line: tl,
                                col: tc,
                                reason,
                                used: false,
                            });
                            pending_send_sync.push(send_sync_notes.len() - 1);
                        }
                        Some(Directive::Untrusted(reason)) => {
                            untrusted_notes.push(UntrustedNote {
                                covers: [tl, tl],
                                line: tl,
                                col: tc,
                                reason,
                                used: false,
                            });
                            pending_untrusted.push(untrusted_notes.len() - 1);
                        }
                        Some(Directive::Validated(expr)) => {
                            validated_notes.push(ValidatedNote {
                                expr,
                                covers: [tl, tl],
                                line: tl,
                                col: tc,
                                used: false,
                            });
                            pending_validated.push(validated_notes.len() - 1);
                        }
                        Some(Directive::Hot) => {
                            hot_notes.push(HotNote {
                                covers: [tl, tl],
                                line: tl,
                                col: tc,
                                used: false,
                            });
                            pending_hot.push(hot_notes.len() - 1);
                        }
                        None => malformed.push((tl, tc)),
                    }
                }
                col += (j - i) as u32;
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, possibly nested.
                let mut depth = 1;
                let mut j = i + 2;
                col += 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                        col += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                        col += 2;
                    } else {
                        if chars[j] == '\n' {
                            line += 1;
                            col = 1;
                        } else {
                            col += 1;
                        }
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let j = scan_string(&chars, i, &mut line, &mut col);
                // Keep the literal's source text (quotes included) so
                // attribute markers such as `#[doc = "srlint: io"]`
                // remain visible to the passes; the token still lexes
                // as one `Lit`, so rules never match inside it.
                let text: String = chars[i..j.min(chars.len())].iter().collect();
                push_tok!(Kind::Lit, text, tl, tc);
                i = j;
            }
            '\'' => {
                // Char literal or lifetime.
                if chars.get(i + 1) == Some(&'\\')
                    || (chars.get(i + 2) == Some(&'\'')
                        && chars.get(i + 1).is_some_and(|&n| n != '\''))
                {
                    // '\x'-style escape or 'c'.
                    let mut j = i + 1;
                    if chars[j] == '\\' {
                        j += 2; // skip the escaped char
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1; // \u{...} etc.
                        }
                    } else {
                        j += 1;
                    }
                    j += 1; // closing quote
                    col += (j - i) as u32;
                    push_tok!(Kind::Lit, String::new(), tl, tc);
                    i = j;
                } else {
                    // Lifetime: consume ident chars after the quote.
                    let mut j = i + 1;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    col += (j - i) as u32;
                    push_tok!(Kind::Lifetime, String::new(), tl, tc);
                    i = j;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                // Raw/byte string prefixes lex as literals, not idents.
                if let Some(j) = scan_prefixed_string(&chars, i, &mut line, &mut col) {
                    let text: String = chars[i..j.min(chars.len())].iter().collect();
                    push_tok!(Kind::Lit, text, tl, tc);
                    i = j;
                    continue;
                }
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                col += (j - i) as u32;
                push_tok!(Kind::Ident, text, tl, tc);
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() {
                    let d = chars[j];
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.'
                        && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                        && !chars[i..j].contains(&'.')
                    {
                        // One fractional point; leaves `0..n` as three tokens.
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text: String = chars[i..j].iter().collect();
                col += (j - i) as u32;
                push_tok!(Kind::Num, text, tl, tc);
                i = j;
            }
            c => {
                col += 1;
                push_tok!(Kind::Punct(c), String::new(), tl, tc);
                i += 1;
            }
        }
    }

    let test_mask = test_mask(&tokens);
    Lexed {
        tokens,
        hatches,
        ordering_notes,
        lock_orders,
        guarded_notes,
        send_sync_notes,
        untrusted_notes,
        validated_notes,
        hot_notes,
        malformed_hatches: malformed,
        test_mask,
    }
}

/// A parsed `// srlint:` comment directive.
enum Directive {
    Allow(String),
    Ordering(String),
    LockOrder(String, String),
    GuardedBy(String),
    SendSync(String),
    Untrusted(String),
    Validated(String),
    Hot,
}

/// Parse the tail of a `// srlint:` comment: `allow(<rule>) -- <reason>`,
/// `ordering -- <reason>`, `lock-order(<a> < <b>) -- <reason>`,
/// `guarded-by(<lock>)` (self-documenting, no reason tail),
/// `send-sync -- <reason>`, `untrusted-source -- <reason>`,
/// `validated(<expr>) -- <reason>`, or `hot` (self-documenting, no
/// reason tail).
fn parse_directive(rest: &str) -> Option<Directive> {
    let rest = rest.trim();
    if let Some(tail) = rest.strip_prefix("allow(") {
        let close = tail.find(')')?;
        let rule = tail.get(..close)?.trim();
        if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return None;
        }
        reason_after(tail.get(close + 1..)?)?;
        return Some(Directive::Allow(rule.to_string()));
    }
    if let Some(tail) = rest.strip_prefix("lock-order(") {
        let close = tail.find(')')?;
        let pair = tail.get(..close)?;
        let (a, b) = pair.split_once('<')?;
        let (a, b) = (a.trim(), b.trim());
        let ok =
            |s: &str| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if !ok(a) || !ok(b) {
            return None;
        }
        reason_after(tail.get(close + 1..)?)?;
        return Some(Directive::LockOrder(a.to_string(), b.to_string()));
    }
    if let Some(tail) = rest.strip_prefix("guarded-by(") {
        let close = tail.find(')')?;
        let lock = tail.get(..close)?.trim();
        if lock.is_empty() || !lock.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return None;
        }
        // The lock name is the documentation; no reason tail, and no
        // trailing text either.
        if !tail.get(close + 1..)?.trim().is_empty() {
            return None;
        }
        return Some(Directive::GuardedBy(lock.to_string()));
    }
    if let Some(tail) = rest.strip_prefix("validated(") {
        // The expression may itself contain call parens
        // (`validated(buf.len())`), so find the balancing close.
        let mut depth = 1usize;
        let mut close = None;
        for (k, c) in tail.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = close?;
        let expr = tail.get(..close)?.trim();
        if expr.is_empty() {
            return None;
        }
        reason_after(tail.get(close + 1..)?)?;
        return Some(Directive::Validated(expr.to_string()));
    }
    if let Some(tail) = rest.strip_prefix("untrusted-source") {
        let reason = reason_after(tail)?;
        return Some(Directive::Untrusted(reason));
    }
    if let Some(tail) = rest.strip_prefix("send-sync") {
        let reason = reason_after(tail)?;
        return Some(Directive::SendSync(reason));
    }
    if let Some(tail) = rest.strip_prefix("ordering") {
        let reason = reason_after(tail)?;
        return Some(Directive::Ordering(reason));
    }
    if let Some(tail) = rest.strip_prefix("hot") {
        // Self-documenting like `guarded-by`: no reason, no trailing
        // text (so `hotfix`-style prose never parses as a directive —
        // the prefix match already requires the literal `hot`, and the
        // empty-tail check rejects anything longer).
        if !tail.trim().is_empty() {
            return None;
        }
        return Some(Directive::Hot);
    }
    None
}

/// Parse the ` -- <reason>` tail shared by every directive; `None` when
/// the reason is missing or empty.
fn reason_after(tail: &str) -> Option<String> {
    let reason = tail.trim_start().strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    Some(reason.to_string())
}

/// Scan a plain `"..."` string starting at `start`; returns the index
/// just past the closing quote and updates line/col.
fn scan_string(chars: &[char], start: usize, line: &mut u32, col: &mut u32) -> usize {
    let mut j = start + 1;
    *col += 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                *col += 2;
                j += 2;
            }
            '"' => {
                *col += 1;
                return j + 1;
            }
            '\n' => {
                *line += 1;
                *col = 1;
                j += 1;
            }
            _ => {
                *col += 1;
                j += 1;
            }
        }
    }
    j
}

/// Scan `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'` starting at an
/// alphabetic char; returns `None` when the chars do not begin such a
/// literal.
fn scan_prefixed_string(
    chars: &[char],
    start: usize,
    line: &mut u32,
    col: &mut u32,
) -> Option<usize> {
    let mut j = start;
    let mut raw = false;
    match chars[j] {
        'b' => {
            j += 1;
            if chars.get(j) == Some(&'\'') {
                // Byte char literal b'x' / b'\n'.
                let mut k = j + 1;
                if chars.get(k) == Some(&'\\') {
                    // Skip the backslash AND the escaped char, so
                    // b'\'' does not stop at the escaped quote.
                    k += 2;
                }
                while k < chars.len() && chars[k] != '\'' {
                    k += 1;
                }
                *col += (k + 1 - start) as u32;
                return Some(k + 1);
            }
            if chars.get(j) == Some(&'r') {
                raw = true;
                j += 1;
            }
        }
        'r' => {
            raw = true;
            j += 1;
        }
        _ => return None,
    }
    let mut hashes = 0usize;
    if raw {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    if !raw {
        *col += (j - start) as u32;
        return Some(scan_string(chars, j, line, col));
    }
    // Raw string: scan to `"` followed by `hashes` hashes.
    *col += (j + 1 - start) as u32;
    let mut k = j + 1;
    while k < chars.len() {
        if chars[k] == '\n' {
            *line += 1;
            *col = 1;
            k += 1;
            continue;
        }
        *col += 1;
        if chars[k] == '"'
            && chars[k + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            *col += hashes as u32;
            return Some(k + 1 + hashes);
        }
        k += 1;
    }
    Some(k)
}

/// Mark every token belonging to a `#[cfg(test)]` / `#[test]` /
/// `#[bench]` item (the attribute, any stacked attributes, and the item
/// body up to its closing brace or semicolon).
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let n = tokens.len();
    let mut mask = vec![false; n];
    let mut i = 0;
    while i < n {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let inner = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        let open = if inner { i + 2 } else { i + 1 };
        if !tokens.get(open).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let close = match_bracket(tokens, open);
        if !attr_is_test(&tokens[open + 1..close.min(n)]) {
            i = close + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is test code.
            for m in mask.iter_mut() {
                *m = true;
            }
            return mask;
        }
        // Skip any further stacked attributes, then the attached item.
        let mut j = close + 1;
        while j < n && tokens[j].is_punct('#') && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = match_bracket(tokens, j + 1) + 1;
        }
        let mut depth = 0usize;
        while j < n {
            if tokens[j].is_punct('{') {
                depth += 1;
            } else if tokens[j].is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            } else if tokens[j].is_punct(';') && depth == 0 {
                break;
            }
            j += 1;
        }
        for m in mask.iter_mut().take((j + 1).min(n)).skip(i) {
            *m = true;
        }
        i = j + 1;
    }
    mask
}

/// Does the attribute token slice mark test-only code? `test` or `bench`
/// must appear, and `not` must not (so `#[cfg(not(test))]` stays live).
fn attr_is_test(attr: &[Token]) -> bool {
    let mut saw_test = false;
    for t in attr {
        if t.kind == Kind::Ident {
            match t.text.as_str() {
                "test" | "bench" => saw_test = true,
                "not" => return false,
                _ => {}
            }
        }
    }
    saw_test
}

/// Index of the `]` matching the `[` at `open` (or `tokens.len()`).
fn match_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_positions() {
        let l = lex("let x = foo.unwrap();\n");
        let unwrap = l.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!((unwrap.line, unwrap.col), (1, 13));
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let l = lex("// unwrap()\nlet s = \"panic!()\"; /* todo!() */\n");
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("todo")));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { r#\"unwrap()\"# ; x }");
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.kind == Kind::Lifetime));
    }

    #[test]
    fn hatch_parses_and_covers_next_code_line() {
        let src = "// srlint: allow(panic) -- tested invariant\nx.unwrap();\n";
        let l = lex(src);
        assert_eq!(l.hatches.len(), 1);
        assert_eq!(l.hatches[0].rule, "panic");
        assert_eq!(l.hatches[0].covers, [1, 2]);
        assert!(l.malformed_hatches.is_empty());
    }

    #[test]
    fn hatch_without_reason_is_malformed() {
        let l = lex("// srlint: allow(panic)\nx.unwrap();\n");
        assert!(l.hatches.is_empty());
        assert_eq!(l.malformed_hatches.len(), 1);
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn live2() {}\n";
        let l = lex(src);
        for (t, &m) in l.tokens.iter().zip(&l.test_mask) {
            if t.is_ident("unwrap") {
                assert!(m, "unwrap inside cfg(test) must be masked");
            }
            if t.is_ident("live") || t.is_ident("live2") {
                assert!(!m, "{} wrongly masked", t.text);
            }
        }
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let l = lex(src);
        let unwrap = l.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(!l.test_mask[unwrap]);
    }

    #[test]
    fn raw_string_with_hashes_spans_inner_quotes() {
        // The `"#` inside must not close the literal (two hashes open it).
        let l = lex("let s = r##\"quote \"# unwrap() here\"##; after();\n");
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        let after = l.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 1);
        let lit = l.tokens.iter().find(|t| t.kind == Kind::Lit).unwrap();
        assert!(lit.text.starts_with("r##\"") && lit.text.ends_with("\"##"));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let l = lex("/* outer /* inner unwrap() */ still comment */ live();\n");
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("still")));
        let live = l.tokens.iter().find(|t| t.is_ident("live")).unwrap();
        assert_eq!((live.line, live.col), (1, 48));
    }

    #[test]
    fn char_literals_containing_quotes_do_not_open_strings() {
        // If '"' opened a string, the trailing unwrap() would be hidden.
        let l = lex("let q = '\"'; let e = '\\''; let b = b'\\''; x.unwrap();\n");
        let unwrap = l.tokens.iter().find(|t| t.is_ident("unwrap"));
        assert!(unwrap.is_some(), "unwrap() swallowed by a char literal");
        assert!(l.tokens.iter().filter(|t| t.kind == Kind::Lit).count() >= 3);
    }

    #[test]
    fn string_literals_keep_source_text() {
        let l = lex("#[doc = \"srlint: io\"]\nfn read_page() {}\n");
        let lit = l.tokens.iter().find(|t| t.kind == Kind::Lit).unwrap();
        assert_eq!(lit.text, "\"srlint: io\"");
    }

    #[test]
    fn ordering_directive_parses_with_reason() {
        let l = lex("// srlint: ordering -- monotonic counter, no sync needed\nx.load(Ordering::Relaxed);\n");
        assert_eq!(l.ordering_notes.len(), 1);
        assert_eq!(l.ordering_notes[0].line, 1);
        assert_eq!(
            l.ordering_notes[0].reason,
            "monotonic counter, no sync needed"
        );
        assert!(!l.ordering_notes[0].used);
        assert!(l.malformed_hatches.is_empty());
    }

    #[test]
    fn ordering_directive_without_reason_is_malformed() {
        let l = lex("// srlint: ordering\nx.load(Ordering::Relaxed);\n");
        assert!(l.ordering_notes.is_empty());
        assert_eq!(l.malformed_hatches.len(), 1);
    }

    #[test]
    fn lock_order_directive_parses() {
        let l = lex("// srlint: lock-order(meta < shard) -- meta decides, shard caches\n");
        assert_eq!(l.lock_orders.len(), 1);
        assert_eq!(l.lock_orders[0].earlier, "meta");
        assert_eq!(l.lock_orders[0].later, "shard");
        assert_eq!(l.lock_orders[0].line, 1);
    }

    #[test]
    fn lock_order_directive_without_reason_is_malformed() {
        let l = lex("// srlint: lock-order(meta < shard)\n");
        assert!(l.lock_orders.is_empty());
        assert_eq!(l.malformed_hatches.len(), 1);
    }

    #[test]
    fn guarded_by_covers_next_code_line() {
        let src = "// srlint: guarded-by(meta)\nfree_head: PageId,\n";
        let l = lex(src);
        assert_eq!(l.guarded_notes.len(), 1);
        assert_eq!(l.guarded_notes[0].lock, "meta");
        assert_eq!(l.guarded_notes[0].covers, [1, 2]);
        assert!(!l.guarded_notes[0].used);
        assert!(l.malformed_hatches.is_empty());
    }

    #[test]
    fn guarded_by_trailing_comment_covers_own_line() {
        let l = lex("free_head: PageId, // srlint: guarded-by(meta)\n");
        assert_eq!(l.guarded_notes.len(), 1);
        assert_eq!(l.guarded_notes[0].covers[0], 1);
    }

    #[test]
    fn guarded_by_with_trailing_text_is_malformed() {
        let l = lex("// srlint: guarded-by(meta) extra words\n");
        assert!(l.guarded_notes.is_empty());
        assert_eq!(l.malformed_hatches.len(), 1);
        let l = lex("// srlint: guarded-by()\n");
        assert!(l.guarded_notes.is_empty());
        assert_eq!(l.malformed_hatches.len(), 1);
    }

    #[test]
    fn send_sync_directive_parses_with_reason() {
        let src = "// srlint: send-sync -- shards are lock-striped\npub struct PageFile {}\n";
        let l = lex(src);
        assert_eq!(l.send_sync_notes.len(), 1);
        assert_eq!(l.send_sync_notes[0].reason, "shards are lock-striped");
        assert_eq!(l.send_sync_notes[0].covers, [1, 2]);
        assert!(!l.send_sync_notes[0].used);
    }

    #[test]
    fn send_sync_without_reason_is_malformed() {
        let l = lex("// srlint: send-sync\nstruct S {}\n");
        assert!(l.send_sync_notes.is_empty());
        assert_eq!(l.malformed_hatches.len(), 1);
    }

    #[test]
    fn untrusted_source_covers_next_code_line() {
        let src = "// srlint: untrusted-source -- reads attacker bytes\nfn u32(&mut self) {}\n";
        let l = lex(src);
        assert_eq!(l.untrusted_notes.len(), 1);
        assert_eq!(l.untrusted_notes[0].reason, "reads attacker bytes");
        assert_eq!(l.untrusted_notes[0].covers, [1, 2]);
        assert!(!l.untrusted_notes[0].used);
        assert!(l.malformed_hatches.is_empty());
    }

    #[test]
    fn untrusted_source_without_reason_is_malformed() {
        let l = lex("// srlint: untrusted-source\nfn u32(&mut self) {}\n");
        assert!(l.untrusted_notes.is_empty());
        assert_eq!(l.malformed_hatches.len(), 1);
    }

    #[test]
    fn validated_parses_expr_with_nested_parens() {
        let src = "// srlint: validated(n.min(cap())) -- header check above\nlet m = n;\n";
        let l = lex(src);
        assert_eq!(l.validated_notes.len(), 1);
        assert_eq!(l.validated_notes[0].expr, "n.min(cap())");
        assert_eq!(l.validated_notes[0].covers, [1, 2]);
        assert!(!l.validated_notes[0].used);
        assert!(l.malformed_hatches.is_empty());
    }

    #[test]
    fn validated_without_reason_or_expr_is_malformed() {
        let l = lex("// srlint: validated(n)\nlet m = n;\n");
        assert!(l.validated_notes.is_empty());
        assert_eq!(l.malformed_hatches.len(), 1);
        let l = lex("// srlint: validated() -- reason\nlet m = n;\n");
        assert!(l.validated_notes.is_empty());
        assert_eq!(l.malformed_hatches.len(), 1);
    }

    #[test]
    fn hot_covers_next_code_line() {
        let l = lex("// srlint: hot\nfn dist2(a: &[f64]) -> f64 { 0.0 }\n");
        assert_eq!(l.hot_notes.len(), 1);
        assert_eq!(l.hot_notes[0].covers, [1, 2]);
        assert!(!l.hot_notes[0].used);
        assert!(l.malformed_hatches.is_empty());
    }

    #[test]
    fn hot_with_trailing_text_is_malformed() {
        let l = lex("// srlint: hot path here\nfn f() {}\n");
        assert!(l.hot_notes.is_empty());
        assert_eq!(l.malformed_hatches.len(), 1);
    }
}
